(* The benchmark harness: regenerates every table and figure of the
   paper's evaluation (Section 6 + appendix) in order, runs a Bechamel
   microbenchmark of the algorithms' optimization times — one grouped test
   per TPC-H table, one case per algorithm — and benchmarks the parallel
   runner + cost cache against the plain sequential, uncached execution.

   Usage:
     bench/main.exe [--mode all|experiments|bechamel|parallel|budget|online|server|oracle|recovery|cluster|portfolio|scale|json]
                    [--jobs N] [--json PATH]

   Modes:
     all          (default) experiments then bechamel, as always.
     experiments  just the experiment catalogue, sequentially.
     bechamel     just the microbenchmarks.
     parallel     the experiment fan-out twice — sequential with cost
                  caching disabled, then on N domains with the memoized
                  cost cache — reporting speedup, byte-equality of the two
                  outputs, and cost-cache hit rates.
     budget       the graceful-degradation demo under step budgets.
     online       the online layout service replaying a synthetic drift
                  stream and the Lineitem query order: re-opts triggered,
                  adoption rate, cumulative estimated cost vs the static
                  Row/Column/one-shot-HillClimb baselines, plus the
                  generation history. The replay outcomes land in the
                  JSON report's "online" section.
     server       the layout daemon under a closed-loop load generator:
                  request throughput at 1 vs 4 server domains, explicit
                  overload shedding (retry-after replies, no hangs) and a
                  wire-vs-local replay determinism check. Outcomes land
                  in the JSON report's "server" section.
     oracle       the incremental cost-delta oracle against full
                  re-costing: merge-peek evals/sec on Lineitem, a
                  HillClimb TPC-H sweep asserting byte-identical layouts
                  and a >= 5x saving in per-query re-costs, and a
                  BruteForce Bell(11) enumeration where 15 delta-costed
                  attributes must not be slower than 12 full-costed
                  ones. Outcomes land in the JSON report's "oracle"
                  section.
     recovery     the durable session registry: WAL-on vs WAL-off ingest
                  overhead (CI asserts <= 1.15x), wall time to recover
                  100 spilled sessions, and eviction/re-attach churn
                  under a resident cap — each phase also asserting the
                  recovered histories byte-identical to the
                  uninterrupted run's. Outcomes land in the JSON
                  report's "recovery" section.
     cluster      the sharded layout cluster: a consistent-hash router in
                  front of 3 shard daemons under a closed-loop 10,000-
                  session workload (shed rate, p50/p99 latency), then a
                  mid-run ring change timing the cross-shard session
                  handoff — every served history checked byte-for-byte
                  against the local replay (any divergence exits 1).
                  Outcomes land in the JSON report's "cluster" section.
     scale        the streaming substrate at SF 100: a bounded-prefix
                  generation throughput probe with O(chunk) tail access,
                  the out-of-core row-to-column transform and a virtual
                  query scan over 600M rows — gated at <= 512 MiB peak
                  heap — then the SF 0.1 streamed-vs-materialized
                  identity check (digests, transform accounting, build
                  accounting and per-query device stats, byte for byte)
                  and the per-partition format selector over the TPC-H
                  line-up (chosen vector never costlier than all-Plain).
                  Any violation exits 1. Outcomes land in the JSON
                  report's "scale" section.
     json         nothing but the machine-readable report (see --json).

   --json PATH    additionally run every algorithm over the TPC-H line-up
                  with counters on and write a schema-versioned JSON
                  report (per-algorithm wall/optimization time, estimated
                  workload cost, cache hit rate, merged counter snapshot,
                  host metadata) to PATH. `--mode json` defaults PATH to
                  BENCH_<schema_version>.json; check_schema.exe validates
                  the result.

   Environment knobs:
     VP_SKIP_SLOW=1       skip the storage-simulator experiment (table7)
                          and the bechamel section (useful in CI).
     VP_RESULTS_DIR=dir   additionally write each experiment's output to
                          dir/<id>.txt (the directory must exist).
     VP_JOBS=N            default for --jobs. *)

(* Shard workers are re-execs of this very binary; the sentinel check
   must run before anything else looks at argv. *)
let () = Vp_router.Worker.maybe_run ()

open Vp_core

let skip_slow = Sys.getenv_opt "VP_SKIP_SLOW" = Some "1"

let results_dir = Sys.getenv_opt "VP_RESULTS_DIR"

let save_result id text =
  match results_dir with
  | None -> ()
  | Some dir ->
      let path = Filename.concat dir (id ^ ".txt") in
      let oc = open_out path in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () -> output_string oc text)

let run_experiments () =
  List.iter
    (fun (e : Vp_experiments.Registry.experiment) ->
      if skip_slow && e.id = "table7" then
        print_endline
          (Vp_experiments.Common.heading
             (Printf.sprintf "%s [%s] — skipped (VP_SKIP_SLOW)" e.paper_ref e.id))
      else begin
        print_string
          (Vp_experiments.Common.heading
             (Printf.sprintf "%s [%s] — %s" e.paper_ref e.id e.description));
        let text = e.run () in
        print_endline text;
        save_result e.id text;
        flush stdout
      end)
    Vp_experiments.Registry.all

(* --- Bechamel microbenchmarks: optimization time per algorithm, one
   grouped test per TPC-H table. --- *)

let bechamel_section () =
  let open Bechamel in
  let open Toolkit in
  let disk = Vp_experiments.Common.disk in
  let algorithms =
    List.filter
      (fun (a : Partitioner.t) -> a.Partitioner.name <> "BruteForce")
      (Vp_experiments.Common.algorithms disk)
  in
  let tests =
    List.map
      (fun table_name ->
        let workload =
          Vp_benchmarks.Tpch.workload ~sf:Vp_experiments.Common.sf table_name
        in
        let cases =
          List.map
            (fun (a : Partitioner.t) ->
              Test.make ~name:a.Partitioner.name
                (Staged.stage (fun () ->
                     let oracle = Vp_cost.Io_model.oracle disk workload in
                     let delta =
                       Vp_cost.Io_model.Incremental.factory disk workload
                     in
                     ignore
                       (Partitioner.exec a
                          (Partitioner.Request.make ~delta ~cost:oracle
                             workload)))))
            algorithms
        in
        Test.make_grouped ~name:table_name cases)
      Vp_benchmarks.Tpch.table_names
  in
  let benchmark test =
    let instances = Instance.[ monotonic_clock ] in
    let cfg =
      Benchmark.cfg ~limit:500 ~quota:(Time.second 0.25) ~kde:(Some 500) ()
    in
    let raw = Benchmark.all cfg instances test in
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
    in
    Analyze.all ols Instance.monotonic_clock raw
  in
  print_string
    (Vp_experiments.Common.heading
       "Bechamel: optimization time per algorithm (ns/run, monotonic clock)");
  List.iter
    (fun test ->
      let results = benchmark test in
      Hashtbl.iter
        (fun name ols ->
          match Bechamel.Analyze.OLS.estimates ols with
          | Some [ est ] -> Printf.printf "  %-30s %12.0f ns/run\n" name est
          | Some _ | None -> Printf.printf "  %-30s (no estimate)\n" name)
        results;
      flush stdout)
    tests

(* --- Parallel runner + cost cache benchmark. ---

   The fan-out re-runs a fixed slice of the experiment catalogue: the
   quality/size/sweet-spot experiments whose outputs are pure functions of
   deterministic costs (no wall-clock times in the rendered text, unlike
   e.g. fig1/fig10), so the sequential and parallel outputs can be
   compared byte-for-byte. *)

let fanout_ids =
  [
    "table1"; "table2"; "fig3"; "fig4"; "fig5"; "fig6"; "fig7"; "table3";
    "table4"; "fig8"; "fig9"; "fig11"; "fig14";
  ]

let fanout_experiments () =
  List.map Vp_experiments.Registry.find fanout_ids

let time f =
  let t0 = Unix.gettimeofday () in
  let v = f () in
  (v, Unix.gettimeofday () -. t0)

(* Cost-cache hit rate of one algorithm run over the TPC-H line-up: a
   fresh query-grained cache observes every cost-model lookup the
   algorithm's own searches make. *)
let algorithm_hit_rate (a : Partitioner.t) =
  let disk = Vp_experiments.Common.disk in
  let cache = Vp_parallel.Cost_cache.create () in
  List.iter
    (fun w ->
      let oracle = Vp_parallel.Cost_cache.query_oracle ~cache disk w in
      ignore (Partitioner.exec a (Partitioner.Request.make ~cost:oracle w)))
    (Vp_benchmarks.Tpch.workloads ~sf:Vp_experiments.Common.sf);
  Vp_parallel.Cost_cache.stats cache

let parallel_section jobs =
  let domains = Vp_parallel.Pool.effective_jobs ~jobs in
  print_string
    (Vp_experiments.Common.heading
       (Printf.sprintf
          "Parallel runner + cost cache: %d experiments, --jobs %d (%d \
           domain(s) after clamping to this machine)"
          (List.length fanout_ids) jobs domains));
  let experiments = fanout_experiments () in
  let tasks =
    List.map
      (fun (e : Vp_experiments.Registry.experiment) ->
        Vp_parallel.Runner.task ~label:e.id e.run)
      experiments
  in
  (* Baseline: --jobs 1, each experiment cold — caches dropped before
     every run and cost caching off, so each experiment computes its
     shared inputs once and every candidate evaluation goes through the
     I/O cost model, exactly as when running each id as its own
     process. *)
  Vp_parallel.Cost_cache.set_caching_enabled false;
  let cold_tasks =
    List.map
      (fun (e : Vp_experiments.Registry.experiment) ->
        Vp_parallel.Runner.task ~label:e.id (fun () ->
            Vp_experiments.Common.reset_caches ();
            e.run ()))
      experiments
  in
  let sequential, t_seq =
    time (fun () -> Vp_parallel.Runner.run ~jobs:1 cold_tasks)
  in
  (* Same tasks fanned over the pool with the memoized caches, cold. *)
  Vp_experiments.Common.reset_caches ();
  Vp_parallel.Cost_cache.set_caching_enabled true;
  let outcomes, t_par =
    time (fun () -> Vp_parallel.Runner.run ~jobs tasks)
  in
  let mismatches =
    List.filter_map
      (fun ((a : string Vp_parallel.Runner.outcome),
            (b : string Vp_parallel.Runner.outcome)) ->
        if a.value = b.value then None else Some a.label)
      (List.combine sequential outcomes)
  in
  let cache_stats = Vp_parallel.Cost_cache.(stats global) in
  Printf.printf "  --jobs 1, cold runs        : %8.3f s\n" t_seq;
  Printf.printf "  --jobs %d, shared memo      : %8.3f s\n" jobs t_par;
  Printf.printf "  speedup                    : %8.2fx\n"
    (if t_par > 0.0 then t_seq /. t_par else Float.infinity);
  Printf.printf "  outputs byte-identical     : %s\n"
    (match mismatches with
    | [] -> "yes"
    | ids ->
        Printf.sprintf "NO — DETERMINISM VIOLATION in %s"
          (String.concat ", " ids));
  Printf.printf
    "  global cost cache          : %d hits, %d misses, %d entries (%.1f%% \
     hit rate)\n"
    cache_stats.Vp_parallel.Cost_cache.hits
    cache_stats.Vp_parallel.Cost_cache.misses
    cache_stats.Vp_parallel.Cost_cache.entries
    (100.0 *. Vp_parallel.Cost_cache.(hit_rate global));
  (* Per-algorithm cache hit rates over the TPC-H line-up, each measured
     with its own cold cache. *)
  List.iter
    (fun name ->
      let a = Vp_algorithms.Registry.find name in
      let s = algorithm_hit_rate a in
      let lookups =
        s.Vp_parallel.Cost_cache.hits + s.Vp_parallel.Cost_cache.misses
      in
      Printf.printf
        "  %-10s cost-cache hit rate: %5.1f%% (%d of %d query-cost lookups)\n"
        name
        (if lookups = 0 then 0.0
         else
           100.0
           *. float_of_int s.Vp_parallel.Cost_cache.hits
           /. float_of_int lookups)
        s.Vp_parallel.Cost_cache.hits lookups)
    [ "HillClimb"; "AutoPart"; "HYRISE" ];
  flush stdout;
  if mismatches <> [] then exit 1

(* --- Budget degradation demo: the cost of the best-so-far layout as the
   per-run step budget grows. Lineitem is the table where full search is
   infeasible (B(16) ≈ 10^10), i.e. exactly where a budgeted BruteForce
   earns its keep: every row shows a valid layout no worse than Row, and
   cost never increases with the budget. --- *)

let budget_section () =
  let disk = Vp_experiments.Common.disk in
  let workload =
    Vp_benchmarks.Tpch.workload ~sf:Vp_experiments.Common.sf "lineitem"
  in
  let n = Table.attribute_count (Workload.table workload) in
  let row_cost =
    Vp_cost.Io_model.oracle disk workload (Partitioning.row n)
  in
  Printf.printf
    "\nGraceful degradation on Lineitem under step budgets (Row = %.0f):\n"
    row_cost;
  Printf.printf "  %-10s %10s %12s  %s\n" "algorithm" "budget" "cost" "status";
  List.iter
    (fun (a : Partitioner.t) ->
      List.iter
        (fun max_steps ->
          let budget = Vp_robust.Budget.create ~max_steps () in
          let oracle = Vp_cost.Io_model.oracle disk workload in
          let delta = Vp_cost.Io_model.Incremental.factory disk workload in
          let r =
            Partitioner.exec a
              (Partitioner.Request.make ~budget ~delta ~cost:oracle workload)
          in
          Printf.printf "  %-10s %10d %12.0f  %s\n" a.Partitioner.name
            max_steps r.Partitioner.Response.cost
            (match r.Partitioner.Response.status with
            | Partitioner.Complete -> "complete"
            | Partitioner.Timed_out { steps; _ } ->
                Printf.sprintf "timed out after %d steps" steps))
        [ 500; 5_000; 50_000 ])
    [ Vp_algorithms.Brute_force.algorithm; Vp_algorithms.Hillclimb.algorithm ];
  flush stdout

(* --- Online layout service benchmark: replay a synthetic drift stream
   (the access distribution rotates mid-stream) and the Lineitem query
   order through the service, and score the cumulative estimated cost
   against the static Row/Column/one-shot baselines. The 1 MiB buffer
   puts the disk in the seek-bound regime where layout quality matters;
   all numbers are model estimates, so the section is deterministic. --- *)

let online_disk =
  Vp_cost.Disk.with_buffer_size Vp_cost.Disk.default (Vp_cost.Disk.mb 1.0)

let online_streams () =
  [
    ( "synthetic-drift",
      online_disk,
      Vp_benchmarks.Synthetic.drift_workload ~attributes:16 ~clusters:4
        ~rows:200_000 ~queries:600 ~scatter:0.05 ~drift_at:0.4 () );
    ( "lineitem-order",
      Vp_experiments.Common.disk,
      Vp_benchmarks.Tpch.workload ~sf:Vp_experiments.Common.sf "lineitem" );
  ]

let online_outcomes ~jobs =
  List.map
    (fun (label, disk, w) ->
      let config =
        Vp_online.Service.default_config ~jobs ~disk
          ~panel:[ Vp_algorithms.Hillclimb.algorithm ]
          ()
      in
      (label, Vp_online.Replay.run ~config w))
    (online_streams ())

let online_entry_of (label, (o : Vp_online.Replay.outcome)) =
  {
    Vp_observe.Bench_report.trace = label;
    queries = o.Vp_online.Replay.queries;
    reopts = o.Vp_online.Replay.reopts;
    adopted = o.Vp_online.Replay.adopted;
    rejected = o.Vp_online.Replay.rejected;
    final_generation = o.Vp_online.Replay.final_generation;
    online_cost = o.Vp_online.Replay.online_cost;
    row_cost = o.Vp_online.Replay.row_cost;
    column_cost = o.Vp_online.Replay.column_cost;
    oneshot_cost = o.Vp_online.Replay.oneshot_cost;
    oneshot_algorithm = o.Vp_online.Replay.oneshot_algorithm;
  }

let online_section ~jobs =
  print_string
    (Vp_experiments.Common.heading
       (Printf.sprintf
          "Online layout service: drift-triggered re-partitioning (--jobs %d)"
          jobs));
  let outcomes = online_outcomes ~jobs in
  List.iter
    (fun (label, (o : Vp_online.Replay.outcome)) ->
      Printf.printf "[%s]\n%s%s\n" label
        (Vp_online.Replay.summary o)
        o.Vp_online.Replay.history)
    outcomes;
  flush stdout;
  List.map online_entry_of outcomes

(* --- Layout server benchmark: a closed-loop load generator against a
   live daemon in this very process. Each phase starts a fresh daemon on
   an ephemeral port, fans N client domains out, and scores completed
   requests, overloaded (shed) replies, wall time and the latency
   histogram (Vp_observe.Stats, one histogram per phase). The throughput
   phases prove the thread-per-connection pool scales; the overload phase
   proves backpressure is an explicit retry-after reply, not a hang. --- *)

let with_daemon ~server_jobs ~max_pending f =
  let d = Vp_server.Daemon.create ~port:0 ~jobs:server_jobs ~max_pending () in
  let server = Domain.spawn (fun () -> Vp_server.Daemon.serve d) in
  Fun.protect
    ~finally:(fun () ->
      Vp_server.Daemon.stop d;
      Domain.join server)
    (fun () -> f (Vp_server.Daemon.port d))

let shed_count () =
  Vp_observe.Stats.counter_value (Vp_observe.Stats.snapshot ()) "server.shed"

let quantile_ms ~phase q =
  let snap = Vp_observe.Stats.snapshot () in
  match List.assoc_opt ("server.bench." ^ phase) snap.Vp_observe.Stats.histograms with
  | Some summary -> Vp_observe.Stats.quantile summary q
  | None -> 0.0

let server_entry ~phase ~server_jobs ~clients ~requests ~shed ~errors ~seconds
    =
  {
    Vp_observe.Bench_report.phase;
    server_jobs;
    clients;
    requests;
    shed;
    errors;
    seconds;
    throughput_rps =
      (if seconds > 0.0 then float_of_int requests /. seconds else 0.0);
    latency_p50_ms = quantile_ms ~phase 0.5;
    latency_p95_ms = quantile_ms ~phase 0.95;
    latency_p99_ms = quantile_ms ~phase 0.99;
  }

let server_workload =
  lazy
    (Vp_benchmarks.Synthetic.workload ~seed:7L ~rows:200_000 ~attributes:12
       ~clusters:4 ~queries:24 ~scatter:0.1 ())

(* Each throughput request is a fixed-service-time [sleep] — a stand-in
   for an I/O-bound layout fetch. With a CPU-bound request the speedup
   claim would be hostage to the bench machine's core count (a 1-core
   host can never show parallel speedup on compute); a fixed service
   time isolates what the daemon actually promises: multiplexing live
   connections across server domains. Real partitioner latency over the
   wire is measured separately in the partition phase below. *)
let service_ms = 20

let throughput_phase ~phase ~server_jobs ~clients ~requests_each =
  let hist = Vp_observe.Stats.histogram ("server.bench." ^ phase) in
  let shed_before = shed_count () in
  with_daemon ~server_jobs ~max_pending:64 (fun port ->
      let worker () =
        let c = Vp_client.Client.create ~port () in
        Fun.protect
          ~finally:(fun () -> Vp_client.Client.close c)
          (fun () ->
            let ok = ref 0 and errors = ref 0 in
            for _ = 1 to requests_each do
              let t0 = Unix.gettimeofday () in
              match
                Vp_client.Client.request c
                  (Vp_server.Protocol.sleep ~ms:service_ms)
              with
              | Ok reply
                when Vp_server.Protocol.reply_status reply = "ok" ->
                  incr ok;
                  Vp_observe.Stats.observe hist
                    ((Unix.gettimeofday () -. t0) *. 1000.0)
              | Ok _ | Error _ -> incr errors
            done;
            (!ok, !errors))
      in
      let outcomes, seconds =
        time (fun () ->
            List.map Domain.join
              (List.init clients (fun _ -> Domain.spawn worker)))
      in
      let requests = List.fold_left (fun a (ok, _) -> a + ok) 0 outcomes in
      let errors = List.fold_left (fun a (_, e) -> a + e) 0 outcomes in
      let shed = shed_count () - shed_before in
      Printf.printf
        "  %-14s %d server job(s), %d clients x %d: %4d ok, %d errors, %d \
         shed, %6.3f s (%7.1f req/s, p50 %.1f ms)\n"
        phase server_jobs clients requests_each requests errors shed seconds
        (if seconds > 0.0 then float_of_int requests /. seconds else 0.0)
        (quantile_ms ~phase 0.5);
      flush stdout;
      (server_entry ~phase ~server_jobs ~clients ~requests ~shed ~errors
         ~seconds,
       seconds))

(* CPU-bound partition requests against the 4-domain daemon: no
   cross-jobs speedup claim (compute parallelism is the business of
   [--mode parallel]), just end-to-end wire latency for real
   partitioner work — frame it, run HillClimb under a step budget,
   frame the layout back. *)
let partition_phase () =
  let phase = "partition-j4" in
  let w = Lazy.force server_workload in
  let hist = Vp_observe.Stats.histogram ("server.bench." ^ phase) in
  let shed_before = shed_count () in
  let clients = 2 and requests_each = 2 in
  with_daemon ~server_jobs:4 ~max_pending:64 (fun port ->
      let worker () =
        let c = Vp_client.Client.create ~port () in
        Fun.protect
          ~finally:(fun () -> Vp_client.Client.close c)
          (fun () ->
            let ok = ref 0 and errors = ref 0 in
            for _ = 1 to requests_each do
              let t0 = Unix.gettimeofday () in
              match
                Vp_client.Client.partition ~algorithm:"HillClimb"
                  ~budget_steps:20_000 c w
              with
              | Ok _ ->
                  incr ok;
                  Vp_observe.Stats.observe hist
                    ((Unix.gettimeofday () -. t0) *. 1000.0)
              | Error _ -> incr errors
            done;
            (!ok, !errors))
      in
      let outcomes, seconds =
        time (fun () ->
            List.map Domain.join
              (List.init clients (fun _ -> Domain.spawn worker)))
      in
      let requests = List.fold_left (fun a (ok, _) -> a + ok) 0 outcomes in
      let errors = List.fold_left (fun a (_, e) -> a + e) 0 outcomes in
      let shed = shed_count () - shed_before in
      Printf.printf
        "  %-14s 4 server jobs, %d clients x %d partition requests: %d ok, \
         %d errors, p50 %.1f ms over the wire\n"
        phase clients requests_each requests errors (quantile_ms ~phase 0.5);
      flush stdout;
      server_entry ~phase ~server_jobs:4 ~clients ~requests ~shed ~errors
        ~seconds)

(* Six clients fight over a single-connection daemon holding each
   connection for a deliberate sleep: most connects are answered with an
   explicit overloaded + retry-after reply, and every client still
   completes by retrying — nobody hangs, nothing is silently queued. *)
let overload_phase () =
  let phase = "overload" in
  let hist = Vp_observe.Stats.histogram ("server.bench." ^ phase) in
  let clients = 6 and requests_each = 2 in
  with_daemon ~server_jobs:1 ~max_pending:1 (fun port ->
      let worker () =
        let c = Vp_client.Client.create ~port () in
        Fun.protect
          ~finally:(fun () -> Vp_client.Client.close c)
          (fun () ->
            let ok = ref 0 and errors = ref 0 and shed = ref 0 in
            for _ = 1 to requests_each do
              let t0 = Unix.gettimeofday () in
              let rec attempt tries =
                if tries = 0 then incr errors
                else
                  match
                    Vp_client.Client.request c
                      (Vp_server.Protocol.sleep ~ms:40)
                  with
                  | Ok reply
                    when Vp_server.Protocol.reply_status reply = "overloaded"
                    ->
                      incr shed;
                      let ms =
                        Option.value ~default:50
                          (Vp_server.Protocol.retry_after_ms reply)
                      in
                      Unix.sleepf (float_of_int ms /. 1000.0);
                      attempt (tries - 1)
                  | Ok _ ->
                      incr ok;
                      Vp_observe.Stats.observe hist
                        ((Unix.gettimeofday () -. t0) *. 1000.0)
                  | Error _ -> incr errors
              in
              attempt 200
            done;
            (!ok, !errors, !shed))
      in
      let outcomes, seconds =
        time (fun () ->
            List.map Domain.join
              (List.init clients (fun _ -> Domain.spawn worker)))
      in
      let requests = List.fold_left (fun a (ok, _, _) -> a + ok) 0 outcomes in
      let errors = List.fold_left (fun a (_, e, _) -> a + e) 0 outcomes in
      let shed = List.fold_left (fun a (_, _, s) -> a + s) 0 outcomes in
      Printf.printf
        "  %-14s 1 server job, max_pending 1, %d clients: %d ok, %d errors, \
         %d shed replies (retry-after honoured, no client hung)\n"
        phase clients requests errors shed;
      flush stdout;
      server_entry ~phase ~server_jobs:1 ~clients ~requests ~shed ~errors
        ~seconds)

(* The same drift stream ingested over the wire and replayed in-process
   must produce byte-identical decision histories — the session
   determinism contract, demonstrated here and proved in test_server. *)
let wire_replay_check () =
  let w =
    Vp_benchmarks.Synthetic.drift_workload ~seed:11L ~attributes:8 ~clusters:3
      ~rows:100_000 ~queries:200 ~scatter:0.05 ~drift_at:0.5 ()
  in
  let table = Workload.table w in
  let wire =
    with_daemon ~server_jobs:4 ~max_pending:64 (fun port ->
        let c = Vp_client.Client.create ~port () in
        Fun.protect
          ~finally:(fun () -> Vp_client.Client.close c)
          (fun () ->
            let ( >>= ) = Result.bind in
            Vp_client.Client.open_session c ~session:"wire" ~buffer_mb:1.0
              table
            >>= fun _created ->
            Array.fold_left
              (fun acc q ->
                acc >>= fun _gen ->
                Vp_client.Client.ingest c ~session:"wire" table q)
              (Ok 0) (Workload.queries w)
            >>= fun _gen -> Vp_client.Client.close_session c ~session:"wire"))
  in
  let local =
    let config =
      Vp_online.Service.default_config ~jobs:1 ~disk:online_disk
        ~panel:[ Vp_algorithms.Hillclimb.algorithm ]
        ()
    in
    (Vp_online.Replay.run ~config w).Vp_online.Replay.history
  in
  let verdict =
    match wire with
    | Error msg -> Printf.sprintf "NO — wire replay failed: %s" msg
    | Ok h when h = local -> "yes"
    | Ok _ -> "NO — HISTORY MISMATCH"
  in
  Printf.printf "  wire replay history matches local replay: %s\n" verdict;
  flush stdout;
  verdict = "yes"

let server_section () =
  Vp_observe.Switch.(raise_to Stats);
  print_string
    (Vp_experiments.Common.heading
       "Layout server: closed-loop load generator over the wire");
  let e1, t1 =
    throughput_phase ~phase:"throughput-j1" ~server_jobs:1 ~clients:4
      ~requests_each:16
  in
  let e4, t4 =
    throughput_phase ~phase:"throughput-j4" ~server_jobs:4 ~clients:4
      ~requests_each:16
  in
  Printf.printf "  throughput speedup at 4 server domains: %.2fx\n"
    (if t4 > 0.0 then t1 /. t4 else Float.infinity);
  let ep = partition_phase () in
  let eo = overload_phase () in
  let deterministic = wire_replay_check () in
  Printf.printf "  normal-load shed replies: %d (expected 0)\n"
    (e1.Vp_observe.Bench_report.shed + e4.Vp_observe.Bench_report.shed);
  Printf.printf "  overload shed replies: %d (expected >= 1)\n"
    eo.Vp_observe.Bench_report.shed;
  flush stdout;
  if not deterministic then exit 1;
  [ e1; e4; ep; eo ]

(* --- Cost-oracle benchmark (--mode oracle): the incremental delta
   sessions of [Vp_cost.Io_model.Incremental] against full re-costing.
   Three phases, each landing in the JSON report's "oracle" section:

   microbench        every pairwise merge of Lineitem's column layout,
                     costed once per candidate by a full [workload_cost]
                     and once by a delta peek — identical candidate
                     counts, so evals/sec compare directly and the
                     cost.query_costs counter shows how much per-query
                     work each path actually did.

   hillclimb-sweep   HillClimb over the TPC-H line-up with the delta
                     path disabled, then enabled. Layouts and cost bits
                     must be byte-identical, and the full path must
                     re-cost at least 5x as many queries as the delta
                     path; either violation exits 1 (the CI gate).

   bruteforce-scale  full enumeration of Bell(11) = 678,570 candidate
                     layouts twice: 12 synthetic attributes on the full
                     path vs 15 synthetic attributes (a different table,
                     same 11-atom search space) on the delta path. The
                     15-attribute run must not be slower; exits 1
                     otherwise. --- *)

let counter_now name =
  Vp_observe.Stats.counter_value (Vp_observe.Stats.snapshot ()) name

let per_sec count seconds =
  if seconds > 0.0 then float_of_int count /. seconds else 0.0

let qc_ratio ~full ~delta =
  if delta > 0 then float_of_int full /. float_of_int delta
  else if full = 0 then 1.0
  else Float.infinity

let oracle_microbench () =
  let disk = Vp_experiments.Common.disk in
  let w =
    Vp_benchmarks.Tpch.workload ~sf:Vp_experiments.Common.sf "lineitem"
  in
  let n = Table.attribute_count (Workload.table w) in
  let column = Partitioning.column n in
  let groups = Array.init n Attr_set.singleton in
  let repeats = 20 in
  let evals = repeats * n * (n - 1) / 2 in
  let sweep cost_pair =
    for _ = 1 to repeats do
      for i = 0 to n - 2 do
        for j = i + 1 to n - 1 do
          ignore (cost_pair groups.(i) groups.(j) : float)
        done
      done
    done
  in
  let full_qc0 = counter_now "cost.query_costs" in
  let (), t_full =
    time (fun () ->
        sweep (fun a b ->
            Vp_cost.Io_model.workload_cost disk w
              (Partitioning.merge_groups column a b)))
  in
  let full_qc = counter_now "cost.query_costs" - full_qc0 in
  let s = Vp_cost.Io_model.Incremental.create disk w in
  ignore (Vp_cost.Io_model.Incremental.goto s column : float);
  let delta_qc0 = counter_now "cost.query_costs" in
  let (), t_delta =
    time (fun () -> sweep (Vp_cost.Io_model.Incremental.cost_merge s))
  in
  let delta_qc = counter_now "cost.query_costs" - delta_qc0 in
  Printf.printf
    "  microbench       lineitem, %d pairwise merges x %d rounds:\n\
    \                   full  %9.0f evals/s (%7d query re-costs, %6.3f s)\n\
    \                   delta %9.0f evals/s (%7d query re-costs, %6.3f s)\n"
    (n * (n - 1) / 2)
    repeats (per_sec evals t_full) full_qc t_full (per_sec evals t_delta)
    delta_qc t_delta;
  flush stdout;
  {
    Vp_observe.Bench_report.phase = "microbench";
    table = "lineitem";
    attributes = n;
    atoms = n;
    full_evals_per_sec = per_sec evals t_full;
    delta_evals_per_sec = per_sec evals t_delta;
    full_query_costs = full_qc;
    delta_query_costs = delta_qc;
    query_cost_ratio = qc_ratio ~full:full_qc ~delta:delta_qc;
    wall_seconds = t_full +. t_delta;
  }

(* The sweep runs HillClimb over the whole line-up [sweep_rounds] times —
   the service pattern, where the same workload is re-optimized again and
   again — with ONE persistent delta session per workload, supplied to
   every round's request. The full path re-costs each round from scratch
   (it has nothing to persist); the delta session's per-query memo makes
   repeat rounds nearly free. Byte-identity of every round's layout and
   cost bits against the full path is asserted. *)
let sweep_rounds = 3

let oracle_sweep () =
  let disk = Vp_experiments.Common.disk in
  let workloads = Vp_benchmarks.Tpch.workloads ~sf:Vp_experiments.Common.sf in
  let run_sweep () =
    (* One session per workload, shared by all rounds of this path. *)
    let prepared =
      List.map
        (fun w ->
          let s = Vp_cost.Io_model.Incremental.create disk w in
          (w, fun () -> Vp_cost.Io_model.Incremental.session s))
        workloads
    in
    let qc0 = counter_now "cost.query_costs" in
    let outcomes, wall =
      time (fun () ->
          List.concat_map
            (fun _round ->
              List.map
                (fun (w, delta) ->
                  let oracle = Vp_cost.Io_model.oracle disk w in
                  let r =
                    Partitioner.exec Vp_algorithms.Hillclimb.algorithm
                      (Partitioner.Request.make ~delta ~cost:oracle w)
                  in
                  ( Partitioning.to_string r.Partitioner.Response.partitioning,
                    Int64.bits_of_float r.Partitioner.Response.cost,
                    r.Partitioner.Response.stats.Partitioner.cost_calls ))
                prepared)
            (List.init sweep_rounds Fun.id))
    in
    (outcomes, wall, counter_now "cost.query_costs" - qc0)
  in
  let full, t_full, full_qc =
    Partitioner.Delta.set_enabled false;
    Fun.protect
      ~finally:(fun () -> Partitioner.Delta.set_enabled true)
      run_sweep
  in
  let delta, t_delta, delta_qc = run_sweep () in
  let mismatches =
    List.filter_map
      (fun ((p1, c1, _), (p2, c2, _)) ->
        if p1 = p2 && c1 = c2 then None else Some p1)
      (List.combine full delta)
  in
  let evals = List.fold_left (fun acc (_, _, c) -> acc + c) 0 full in
  let ratio = qc_ratio ~full:full_qc ~delta:delta_qc in
  Printf.printf
    "  hillclimb-sweep  TPC-H line-up x %d rounds, %d candidate evaluations \
     per path:\n\
    \                   full  %9.0f evals/s (%7d query re-costs, %6.3f s)\n\
    \                   delta %9.0f evals/s (%7d query re-costs, %6.3f s)\n\
    \                   layouts byte-identical: %s\n\
    \                   query re-cost ratio   : %.1fx (gate: >= 5.0x)\n"
    sweep_rounds evals (per_sec evals t_full) full_qc t_full
    (per_sec evals t_delta) delta_qc t_delta
    (if mismatches = [] then "yes" else "NO — DETERMINISM VIOLATION")
    ratio;
  flush stdout;
  if mismatches <> [] then exit 1;
  if ratio < 5.0 then begin
    Printf.printf
      "  ORACLE GATE FAILED: delta path saved only %.1fx query re-costs\n"
      ratio;
    exit 1
  end;
  {
    Vp_observe.Bench_report.phase = "hillclimb-sweep";
    table = "tpch";
    attributes = 16;
    atoms = 0;
    full_evals_per_sec = per_sec evals t_full;
    delta_evals_per_sec = per_sec evals t_delta;
    full_query_costs = full_qc;
    delta_query_costs = delta_qc;
    query_cost_ratio = ratio;
    wall_seconds = t_full +. t_delta;
  }

(* Seeds chosen so both tables decompose into exactly 11 primary
   partitions: the two BruteForce enumerations then visit the same
   Bell(11) = 678,570 candidate layouts and differ only in how each
   candidate is costed. *)
let oracle_bruteforce () =
  let disk = Vp_experiments.Common.disk in
  let algo = Vp_algorithms.Brute_force.make () in
  let run ~enabled w =
    Partitioner.Delta.set_enabled enabled;
    Fun.protect
      ~finally:(fun () -> Partitioner.Delta.set_enabled true)
      (fun () ->
        let qc0 = counter_now "cost.query_costs" in
        let oracle = Vp_cost.Io_model.oracle disk w in
        let delta = Vp_cost.Io_model.Incremental.factory disk w in
        let r, wall =
          time (fun () ->
              Partitioner.exec algo
                (Partitioner.Request.make ~delta ~cost:oracle w))
        in
        (r, wall, counter_now "cost.query_costs" - qc0))
  in
  let w12 =
    Vp_benchmarks.Synthetic.workload ~seed:1L ~rows:100_000 ~attributes:12
      ~clusters:4 ~queries:12 ~scatter:0.1 ()
  in
  let w15 =
    Vp_benchmarks.Synthetic.workload ~seed:5L ~rows:100_000 ~attributes:15
      ~clusters:4 ~queries:16 ~scatter:0.1 ()
  in
  let atoms w = List.length (Workload.primary_partitions w) in
  let r12, t12, qc12 = run ~enabled:false w12 in
  let r15, t15, qc15 = run ~enabled:true w15 in
  let entry ~phase ~table ~attributes ~atoms ~full ~wall ~qc =
    {
      Vp_observe.Bench_report.phase;
      table;
      attributes;
      atoms;
      full_evals_per_sec =
        (if full then per_sec r12.Partitioner.Response.stats.Partitioner.cost_calls wall
         else 0.0);
      delta_evals_per_sec =
        (if full then 0.0
         else per_sec r15.Partitioner.Response.stats.Partitioner.cost_calls wall);
      full_query_costs = (if full then qc else 0);
      delta_query_costs = (if full then 0 else qc);
      query_cost_ratio = 0.0;
      wall_seconds = wall;
    }
  in
  Printf.printf
    "  bruteforce-scale Bell(11) enumeration, full 12-attr vs delta 15-attr:\n\
    \                   full  12 attrs, %2d atoms: %6.3f s (%d query re-costs)\n\
    \                   delta 15 attrs, %2d atoms: %6.3f s (%d query re-costs)\n\
    \                   15-attr delta within 12-attr full budget: %s\n"
    (atoms w12) t12 qc12 (atoms w15) t15 qc15
    (if t15 <= t12 then "yes" else "NO");
  flush stdout;
  if t15 > t12 then begin
    Printf.printf
      "  ORACLE GATE FAILED: 15-attribute delta enumeration slower than \
       12-attribute full enumeration (%.3f s > %.3f s)\n"
      t15 t12;
    exit 1
  end;
  [
    entry ~phase:"bruteforce-full" ~table:"synthetic-12" ~attributes:12
      ~atoms:(atoms w12) ~full:true ~wall:t12 ~qc:qc12;
    entry ~phase:"bruteforce-delta" ~table:"synthetic-15" ~attributes:15
      ~atoms:(atoms w15) ~full:false ~wall:t15 ~qc:qc15;
  ]

let oracle_section () =
  Vp_observe.Switch.(raise_to Stats);
  print_string
    (Vp_experiments.Common.heading
       "Cost oracle: incremental delta sessions vs full re-costing");
  let micro = oracle_microbench () in
  let sweep = oracle_sweep () in
  let scale = oracle_bruteforce () in
  micro :: sweep :: scale

(* --- durable sessions: WAL ingest overhead, spill/restore latency and
   LRU eviction/re-attach churn. Every phase runs at the Sessions level
   (no TCP) so the numbers measure durability, not the socket stack, and
   every phase double-checks the headline invariant: recovered histories
   byte-identical to the uninterrupted run's. --- *)

let recovery_spec ~session table =
  {
    Vp_server.Protocol.session;
    table;
    panel = [ "HillClimb" ];
    drift_ratio = 2.0;
    min_window = 8;
    epoch = 64;
    memory = 32;
    horizon = 1.0;
    budget_steps = None;
    buffer_mb = 1.0;
  }

let counter_delta name (before : Vp_observe.Stats.snapshot)
    (after : Vp_observe.Stats.snapshot) =
  let get (s : Vp_observe.Stats.snapshot) =
    match List.assoc_opt name s.Vp_observe.Stats.counters with
    | Some v -> v
    | None -> 0
  in
  get after - get before

let rec remove_tree path =
  match Sys.is_directory path with
  | exception Sys_error _ -> ()
  | true ->
      Array.iter
        (fun f -> remove_tree (Filename.concat path f))
        (Sys.readdir path);
      (try Unix.rmdir path with Unix.Unix_error _ -> ())
  | false -> ( try Sys.remove path with Sys_error _ -> ())

let with_temp_dir tag f =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "vp-bench-%s-%d" tag (Unix.getpid ()))
  in
  remove_tree dir;
  Fun.protect ~finally:(fun () -> remove_tree dir) (fun () -> f dir)

let recovery_open reg spec =
  match Vp_server.Sessions.open_session reg spec with
  | Ok _ -> ()
  | Error msg -> failwith msg

let recovery_ingest_all reg ~session table queries =
  List.iteri
    (fun i q ->
      match
        Vp_server.Sessions.ingest reg session ~seq:(i + 1)
          ~attributes:(Table.names_of_attr_set table (Query.references q))
          ~weight:(Query.weight q) ~name:(Query.name q) ()
      with
      | Ok _ -> ()
      | Error msg -> failwith msg)
    queries

let recovery_history reg name =
  match Vp_server.Sessions.view reg name Vp_online.Service.history with
  | Ok h -> h
  | Error msg -> failwith msg

let recovery_stream ~seed ~queries =
  Vp_benchmarks.Synthetic.drift_workload ~seed ~attributes:8 ~clusters:3
    ~rows:50_000 ~queries ~scatter:0.05 ~drift_at:0.5 ()

(* WAL-on vs WAL-off: the same 400-query stream ingested into an
   in-memory registry and a durable one. Only the ingest loop is timed —
   registry setup and the (fsynced) open-time meta write are one-offs,
   not per-query cost — and each variant takes the best of three runs so
   the ratio measures the append path, not scheduler noise. *)
let recovery_wal_overhead () =
  let w = recovery_stream ~seed:71L ~queries:400 in
  let table = Workload.table w in
  let queries = Array.to_list (Workload.queries w) in
  let run reg =
    recovery_open reg (recovery_spec ~session:"overhead" table);
    let (), seconds =
      time (fun () -> recovery_ingest_all reg ~session:"overhead" table queries)
    in
    (recovery_history reg "overhead", seconds)
  in
  let best_of_3 mk =
    let runs = List.init 3 (fun _ -> mk ()) in
    let hist = fst (List.hd runs) in
    (hist, List.fold_left (fun acc (_, s) -> Float.min acc s) infinity runs)
  in
  let hist_off, t_off = best_of_3 (fun () -> run (Vp_server.Sessions.create ())) in
  let before = Vp_observe.Stats.snapshot () in
  let hist_on, t_on =
    best_of_3 (fun () ->
        with_temp_dir "wal" (fun dir ->
            run (Vp_server.Sessions.create ~data_dir:dir ())))
  in
  let after = Vp_observe.Stats.snapshot () in
  let ratio = if t_off > 0.0 then t_on /. t_off else 0.0 in
  let identical = String.equal hist_off hist_on in
  Printf.printf
    "  WAL overhead: off %.4fs, on %.4fs, ratio %.3f, histories %s\n%!" t_off
    t_on ratio
    (if identical then "identical" else "DIVERGED");
  {
    Vp_observe.Bench_report.phase = "wal-overhead";
    sessions = 1;
    queries = List.length queries;
    wal_appends = counter_delta "server.wal_appends" before after;
    evictions = counter_delta "server.evictions" before after;
    reattaches = counter_delta "server.reattaches" before after;
    recovered = 0;
    seconds = t_on;
    wal_overhead_ratio = ratio;
    byte_identical = identical;
  }

(* 100 sessions ingested, drained to disk, then recovered by a fresh
   registry: [seconds] is the wall time to restore all 100 histories. *)
let recovery_spill_restore () =
  with_temp_dir "spill" (fun dir ->
      let w = recovery_stream ~seed:72L ~queries:20 in
      let table = Workload.table w in
      let queries = Array.to_list (Workload.queries w) in
      let n = 100 in
      let name i = Printf.sprintf "s%03d" i in
      let reg = Vp_server.Sessions.create ~data_dir:dir () in
      let expected =
        Array.init n (fun i ->
            let s = name i in
            recovery_open reg (recovery_spec ~session:s table);
            recovery_ingest_all reg ~session:s table queries;
            recovery_history reg s)
      in
      Vp_server.Sessions.drain reg;
      let before = Vp_observe.Stats.snapshot () in
      let reg2 = Vp_server.Sessions.create ~data_dir:dir () in
      let histories, seconds =
        time (fun () -> Array.init n (fun i -> recovery_history reg2 (name i)))
      in
      let after = Vp_observe.Stats.snapshot () in
      let identical = Array.for_all2 String.equal expected histories in
      Printf.printf
        "  Spill/restore: %d sessions recovered in %.4fs (%.2f ms/session), \
         histories %s\n\
         %!"
        n seconds
        (seconds *. 1000.0 /. float_of_int n)
        (if identical then "identical" else "DIVERGED");
      {
        Vp_observe.Bench_report.phase = "spill-restore";
        sessions = n;
        queries = n * List.length queries;
        wal_appends = counter_delta "server.wal_appends" before after;
        evictions = counter_delta "server.evictions" before after;
        reattaches = counter_delta "server.reattaches" before after;
        recovered = Vp_server.Sessions.recovered_count reg2;
        seconds;
        wal_overhead_ratio = 0.0;
        byte_identical = identical;
      })

(* 32 sessions round-robin under a cap of 8 residents: every touch of a
   spilled session re-attaches and pushes the LRU resident out — maximal
   churn — while an uncapped in-memory registry provides the reference
   histories. *)
let recovery_evict_reattach () =
  with_temp_dir "evict" (fun dir ->
      let w = recovery_stream ~seed:73L ~queries:30 in
      let table = Workload.table w in
      let queries = Array.to_list (Workload.queries w) in
      let n = 32 in
      let name i = Printf.sprintf "e%02d" i in
      let reg = Vp_server.Sessions.create ~data_dir:dir ~max_resident:8 () in
      let reference = Vp_server.Sessions.create () in
      for i = 0 to n - 1 do
        recovery_open reg (recovery_spec ~session:(name i) table);
        recovery_open reference (recovery_spec ~session:(name i) table)
      done;
      let before = Vp_observe.Stats.snapshot () in
      let (), seconds =
        time (fun () ->
            List.iteri
              (fun j q ->
                let attributes =
                  Table.names_of_attr_set table (Query.references q)
                in
                for i = 0 to n - 1 do
                  List.iter
                    (fun reg ->
                      match
                        Vp_server.Sessions.ingest reg (name i) ~seq:(j + 1)
                          ~attributes ~weight:(Query.weight q)
                          ~name:(Query.name q) ()
                      with
                      | Ok _ -> ()
                      | Error msg -> failwith msg)
                    [ reg; reference ]
                done)
              queries)
      in
      let after = Vp_observe.Stats.snapshot () in
      let identical =
        List.for_all
          (fun i ->
            String.equal
              (recovery_history reg (name i))
              (recovery_history reference (name i)))
          (List.init n Fun.id)
      in
      let evictions = counter_delta "server.evictions" before after in
      let reattaches = counter_delta "server.reattaches" before after in
      Printf.printf
        "  Evict/re-attach: %d sessions, cap 8: %d evictions, %d re-attaches \
         in %.4fs, histories %s\n\
         %!"
        n evictions reattaches seconds
        (if identical then "identical" else "DIVERGED");
      {
        Vp_observe.Bench_report.phase = "evict-reattach";
        sessions = n;
        queries = n * List.length queries;
        wal_appends = counter_delta "server.wal_appends" before after;
        evictions;
        reattaches;
        recovered = 0;
        seconds;
        wal_overhead_ratio = 0.0;
        byte_identical = identical;
      })

let recovery_section () =
  Vp_observe.Switch.(raise_to Stats);
  print_string
    (Vp_experiments.Common.heading
       "Durable sessions: WAL overhead, spill/restore, evict/re-attach");
  let overhead = recovery_wal_overhead () in
  let spill = recovery_spill_restore () in
  let churn = recovery_evict_reattach () in
  [ overhead; spill; churn ]

(* --- Sharded cluster benchmark (--mode cluster): the consistent-hash
   router in front of 3 shard daemons (separate processes, re-execs of
   this binary — see the [maybe_run] hook at the top of the file).

   closed-loop   8 client domains drive 10,000 shallow sessions (open +
                 3 sequenced ingests + close) through the router; every
                 close returns the session's decision history, checked
                 byte-for-byte against one locally replayed expectation.
                 Scores throughput, shed rate and client-side p50/p99.

   handoff       48 deep drift sessions ingest concurrently; once every
                 worker passes the halfway mark a shard is added
                 ([cluster_add]), so live sessions spill, move between
                 data dirs and are adopted mid-stream while the ingest
                 loops ride out the shed window on seq-idempotent
                 retries. Scores the ring-change wall time, sessions
                 moved, and — again — byte-identity of every history.

   Any determinism violation exits 1 (the CI gate greps for the
   "determinism violations: 0" line). --- *)

let cluster_shards = 3

let cluster_clients = 8

let with_cluster ~tag ?(shards = 3) f =
  with_temp_dir tag (fun dir ->
      let r =
        Vp_router.Router.create ~port:0 ~shards ~shard_jobs:4 ~data_dir:dir ()
      in
      let server = Domain.spawn (fun () -> Vp_router.Router.serve r) in
      Fun.protect
        ~finally:(fun () ->
          Vp_router.Router.stop r;
          Domain.join server)
        (fun () -> f r (Vp_router.Router.port r)))

(* The fleet-wide value of a counter, from the router's aggregated
   [stats] reply (the shards are separate processes — their counters
   are not in this process's snapshot). *)
let cluster_counter reply name =
  match Vp_observe.Json.member "counters" reply with
  | Some (Vp_observe.Json.Obj fields) -> (
      match List.assoc_opt name fields with
      | Some (Vp_observe.Json.Int n) -> n
      | _ -> 0)
  | _ -> 0

let cluster_fleet_shed port =
  let c = Vp_client.Client.create ~port () in
  Fun.protect
    ~finally:(fun () -> Vp_client.Client.close c)
    (fun () ->
      match Vp_client.Client.server_stats c with
      | Ok reply -> cluster_counter reply "server.shed"
      | Error _ -> 0)

(* The local expectation every served history is compared against:
   the same stream replayed in-process under the daemon's default
   session spec (HillClimb panel, 1 MiB buffer) — the pattern proven
   by [wire_replay_check] above. *)
let cluster_expected_history w =
  let config =
    Vp_online.Service.default_config ~jobs:1 ~disk:online_disk
      ~panel:[ Vp_algorithms.Hillclimb.algorithm ]
      ()
  in
  (Vp_online.Replay.run ~config w).Vp_online.Replay.history

let cluster_entry ~phase ~shards ~clients ~sessions ~requests ~shed ~errors
    ~seconds ~handoffs ~handoff_seconds ~restarts ~violations =
  {
    Vp_observe.Bench_report.phase;
    shards;
    clients;
    sessions;
    requests;
    shed;
    errors;
    seconds;
    throughput_rps =
      (if seconds > 0.0 then float_of_int requests /. seconds else 0.0);
    shed_rate =
      (let total = requests + shed in
       if total > 0 then float_of_int shed /. float_of_int total else 0.0);
    latency_p50_ms = quantile_ms ~phase 0.5;
    latency_p99_ms = quantile_ms ~phase 0.99;
    handoffs;
    handoff_seconds;
    restarts;
    determinism_violations = violations;
  }

(* One request, timed into the phase histogram; [Ok]s count, [Error]s
   are the caller's to score. *)
let cluster_timed hist ok errors f =
  let t0 = Unix.gettimeofday () in
  match f () with
  | Ok v ->
      incr ok;
      Vp_observe.Stats.observe hist ((Unix.gettimeofday () -. t0) *. 1000.0);
      Some v
  | Error _ ->
      incr errors;
      None

let cluster_closed_loop () =
  let phase = "closed-loop" in
  let hist = Vp_observe.Stats.histogram ("server.bench." ^ phase) in
  let w =
    Vp_benchmarks.Synthetic.workload ~seed:21L ~rows:50_000 ~attributes:8
      ~clusters:3 ~queries:3 ~scatter:0.05 ()
  in
  let table = Workload.table w in
  let queries = Array.to_list (Workload.queries w) in
  let expected = cluster_expected_history w in
  let sessions = 10_000 in
  let per = sessions / cluster_clients in
  let shed0 = counter_now "router.shed" in
  let restarts0 = counter_now "router.restarts" in
  with_cluster ~tag:"cluster-closed" ~shards:cluster_shards (fun _r port ->
      let worker k () =
        let c =
          Vp_client.Client.create ~port ~retry_seed:(Int64.of_int k) ()
        in
        Fun.protect
          ~finally:(fun () -> Vp_client.Client.close c)
          (fun () ->
            let ok = ref 0 and errors = ref 0 and violations = ref 0 in
            for s = k * per to ((k + 1) * per) - 1 do
              let session = Printf.sprintf "c%05d" s in
              match
                cluster_timed hist ok errors (fun () ->
                    Vp_client.Client.open_session c ~session ~buffer_mb:1.0
                      table)
              with
              | None -> ()
              | Some _opened -> (
                  List.iteri
                    (fun j q ->
                      ignore
                        (cluster_timed hist ok errors (fun () ->
                             Vp_client.Client.ingest ~seq:(j + 1) c ~session
                               table q)))
                    queries;
                  match
                    cluster_timed hist ok errors (fun () ->
                        Vp_client.Client.close_session c ~session)
                  with
                  | Some h when String.equal h expected -> ()
                  | Some _ -> incr violations
                  | None -> ())
            done;
            (!ok, !errors, !violations))
      in
      let outcomes, seconds =
        time (fun () ->
            List.map Domain.join
              (List.init cluster_clients (fun k -> Domain.spawn (worker k))))
      in
      let shard_shed = cluster_fleet_shed port in
      let requests = List.fold_left (fun a (ok, _, _) -> a + ok) 0 outcomes in
      let errors = List.fold_left (fun a (_, e, _) -> a + e) 0 outcomes in
      let violations =
        List.fold_left (fun a (_, _, v) -> a + v) 0 outcomes
      in
      let shed = counter_now "router.shed" - shed0 + shard_shed in
      let restarts = counter_now "router.restarts" - restarts0 in
      let e =
        cluster_entry ~phase ~shards:cluster_shards ~clients:cluster_clients
          ~sessions ~requests ~shed ~errors ~seconds ~handoffs:0
          ~handoff_seconds:0.0 ~restarts ~violations
      in
      Printf.printf
        "  %-12s %d shards, %d clients, %d sessions: %d ok, %d errors, %d \
         shed, %6.2f s (%8.1f req/s, p50 %.1f ms, p99 %.1f ms)\n\
         %!"
        phase cluster_shards cluster_clients sessions requests errors shed
        seconds e.Vp_observe.Bench_report.throughput_rps
        e.Vp_observe.Bench_report.latency_p50_ms
        e.Vp_observe.Bench_report.latency_p99_ms;
      e)

let cluster_handoff () =
  let phase = "handoff" in
  let hist = Vp_observe.Stats.histogram ("server.bench." ^ phase) in
  let w =
    Vp_benchmarks.Synthetic.drift_workload ~seed:22L ~attributes:8 ~clusters:3
      ~rows:50_000 ~queries:50 ~scatter:0.05 ~drift_at:0.5 ()
  in
  let table = Workload.table w in
  let queries = Array.to_list (Workload.queries w) in
  let half = List.length queries / 2 in
  let expected = cluster_expected_history w in
  let sessions = 48 in
  let per = sessions / cluster_clients in
  let shed0 = counter_now "router.shed" in
  let restarts0 = counter_now "router.restarts" in
  with_cluster ~tag:"cluster-handoff" ~shards:cluster_shards (fun r port ->
      (* Workers bump this once their sessions pass the halfway mark;
         the main thread then changes the ring under live traffic.
         Workers hold their sessions open until [handoff_done] so every
         session in the ring's deterministic moving set is still
         resident when the handoff runs — otherwise the moved count
         (and the handoff cost it prices) depends on worker speed. *)
      let at_half = Atomic.make 0 in
      let handoff_done = Atomic.make false in
      let worker k () =
        let ok = ref 0 and errors = ref 0 and violations = ref 0 in
        let mine =
          List.init per (fun i -> Printf.sprintf "h%03d" ((k * per) + i))
        in
        let with_conn seed f =
          let c =
            Vp_client.Client.create ~port ~retry_seed:(Int64.of_int seed) ()
          in
          Fun.protect ~finally:(fun () -> Vp_client.Client.close c) (fun () -> f c)
        in
        with_conn
          (100 + k)
          (fun c ->
            List.iter
              (fun session ->
                ignore
                  (cluster_timed hist ok errors (fun () ->
                       Vp_client.Client.open_session c ~session ~buffer_mb:1.0
                         table)))
              mine;
            List.iteri
              (fun j q ->
                if j = half then Atomic.incr at_half;
                List.iter
                  (fun session ->
                    ignore
                      (cluster_timed hist ok errors (fun () ->
                           Vp_client.Client.ingest ~seq:(j + 1) c ~session
                             table q)))
                  mine)
              queries);
        (* The connection is gone (freeing a router slot for the control
           client and the slower workers) but the sessions are not: they
           live on the shards until closed. Wait out the ring change so
           every session in its deterministic moving set is still
           resident when the handoff runs, then close over a fresh
           connection. *)
        while not (Atomic.get handoff_done) do
          Unix.sleepf 0.002
        done;
        with_conn
          (200 + k)
          (fun c ->
            List.iter
              (fun session ->
                match
                  cluster_timed hist ok errors (fun () ->
                      Vp_client.Client.close_session c ~session)
                with
                | Some h when String.equal h expected -> ()
                | Some _ -> incr violations
                | None -> ())
              mine);
        (!ok, !errors, !violations)
      in
      let t0 = Unix.gettimeofday () in
      let domains =
        List.init cluster_clients (fun k -> Domain.spawn (worker k))
      in
      (* Ring change under load: wait for every worker to reach the
         halfway mark, then add a shard. The request returns once every
         moving session has been spilled, renamed and adopted — its
         duration IS the handoff cost. *)
      while Atomic.get at_half < cluster_clients do
        Unix.sleepf 0.005
      done;
      let moved, handoff_seconds =
        let c = Vp_client.Client.create ~port () in
        Fun.protect
          ~finally:(fun () ->
            Atomic.set handoff_done true;
            Vp_client.Client.close c)
          (fun () ->
            let reply, dt =
              time (fun () ->
                  Vp_client.Client.request_retry c
                    (Vp_observe.Json.Obj
                       [ ("op", Vp_observe.Json.String "cluster_add") ]))
            in
            match reply with
            | Ok reply
              when Vp_server.Protocol.reply_status reply = "ok" ->
                ( Option.value ~default:0
                    (Vp_server.Protocol.int_field "moved" reply),
                  dt )
            | Ok _ | Error _ -> (-1, dt))
      in
      let outcomes = List.map Domain.join domains in
      let seconds = Unix.gettimeofday () -. t0 in
      let shard_shed = cluster_fleet_shed port in
      let requests = List.fold_left (fun a (ok, _, _) -> a + ok) 0 outcomes in
      let errors =
        List.fold_left (fun a (_, e, _) -> a + e) 0 outcomes
        + if moved < 0 then 1 else 0
      in
      let violations =
        List.fold_left (fun a (_, _, v) -> a + v) 0 outcomes
      in
      let shed = counter_now "router.shed" - shed0 + shard_shed in
      let restarts = counter_now "router.restarts" - restarts0 in
      let e =
        cluster_entry ~phase ~shards:(Vp_router.Router.shard_count r)
          ~clients:cluster_clients ~sessions ~requests ~shed ~errors ~seconds
          ~handoffs:(max moved 0) ~handoff_seconds ~restarts ~violations
      in
      Printf.printf
        "  %-12s shard added mid-stream (now %d): %d sessions, %d moved in \
         %.3f s, %d ok, %d errors, %d shed, histories %s\n\
         %!"
        phase
        (Vp_router.Router.shard_count r)
        sessions (max moved 0) handoff_seconds requests errors shed
        (if violations = 0 then "identical" else "DIVERGED");
      e)

let cluster_section () =
  Vp_observe.Switch.(raise_to Stats);
  print_string
    (Vp_experiments.Common.heading
       "Sharded cluster: consistent-hash router, closed loop + handoff");
  let closed = cluster_closed_loop () in
  let handoff = cluster_handoff () in
  let violations =
    closed.Vp_observe.Bench_report.determinism_violations
    + handoff.Vp_observe.Bench_report.determinism_violations
  in
  Printf.printf "  determinism violations: %d\n%!" violations;
  if violations > 0 then exit 1;
  [ closed; handoff ]

(* --- Racing portfolio benchmark (--mode portfolio): the meta-
   partitioner against every single entrant under one equal,
   deterministic step budget per table. The gate is the portfolio's
   construction guarantee — each entrant races on a [Budget.spawn] of
   the request budget, i.e. exactly a solo run's allowance, and the
   winner is the cheapest response — so the race's layout must never
   cost more than the best single entrant's. Wall time is reported but
   not gated (steps are the deterministic currency). --- *)

let portfolio_steps = 20_000

let portfolio_run algo w =
  let disk = Vp_experiments.Common.disk in
  let oracle = Vp_experiments.Common.cached_oracle disk w in
  let delta = Vp_cost.Io_model.Incremental.factory disk w in
  let budget = Vp_robust.Budget.create ~max_steps:portfolio_steps () in
  Partitioner.exec algo
    (Partitioner.Request.make ~budget ~delta ~cost:oracle w)

let portfolio_section () =
  Vp_observe.Switch.(raise_to Stats);
  print_string
    (Vp_experiments.Common.heading
       "Racing portfolio: never worse than the best single entrant");
  let disk = Vp_experiments.Common.disk in
  let workloads = Vp_benchmarks.Tpch.workloads ~sf:Vp_experiments.Common.sf in
  let singles =
    Vp_algorithms.Registry.with_brute_force
      ~brute_force:(Vp_experiments.Common.brute_force disk) ()
    @ [
        Vp_algorithms.Ilp.with_bound disk;
        Vp_algorithms.Hypergraph.algorithm;
      ]
    @ Vp_algorithms.Registry.baselines
  in
  let race = Vp_algorithms.Portfolio.with_bound disk in
  let entries =
    List.map
      (fun w ->
        let table = Table.name (Workload.table w) in
        let r, race_seconds = time (fun () -> portfolio_run race w) in
        let entrants = r.Partitioner.Response.provenance.entrants in
        let winner =
          match
            List.find_opt
              (fun (e : Partitioner.Response.entrant) -> e.winner)
              entrants
          with
          | Some e -> e.Partitioner.Response.entrant
          | None -> "-"
        in
        let timed_out =
          List.length
            (List.filter
               (fun (e : Partitioner.Response.entrant) ->
                 match e.entrant_status with
                 | Partitioner.Timed_out _ -> true
                 | Partitioner.Complete -> false)
               entrants)
        in
        let best_single, best_single_cost =
          List.fold_left
            (fun acc (a : Partitioner.t) ->
              let r = portfolio_run a w in
              match acc with
              | Some (_, c) when c <= r.Partitioner.Response.cost -> acc
              | _ -> Some (a.Partitioner.name, r.Partitioner.Response.cost))
            None singles
          |> Option.get
        in
        let e =
          {
            Vp_observe.Bench_report.table;
            winner;
            portfolio_cost = r.Partitioner.Response.cost;
            best_single;
            best_single_cost;
            entrants_run = List.length entrants;
            timed_out;
            race_seconds;
            never_worse =
              r.Partitioner.Response.cost <= best_single_cost +. 1e-9;
          }
        in
        Printf.printf
          "  %-10s winner %-10s cost %10.3f  best single %-10s %10.3f  \
           (%d entrants, %d timed out, %.3f s)  %s\n\
           %!"
          table winner e.Vp_observe.Bench_report.portfolio_cost best_single
          best_single_cost e.Vp_observe.Bench_report.entrants_run timed_out
          race_seconds
          (if e.Vp_observe.Bench_report.never_worse then "ok" else "WORSE");
        e)
      workloads
  in
  let worse =
    List.filter
      (fun (e : Vp_observe.Bench_report.portfolio_entry) -> not e.never_worse)
      entries
  in
  Printf.printf "  never-worse violations: %d\n%!" (List.length worse);
  if worse <> [] then exit 1;
  entries

(* --- Streaming-substrate benchmark (--mode scale): the chunked
   generator, the out-of-core storage simulation and the per-partition
   format selector at a scale factor the materializing path could not
   hold. [Gc.quick_stat ()].top_heap_words is a process-wide high-water
   mark, so the dispatch runs this section before anything else builds a
   table: the <= 512 MiB gate taken after the SF100 phases then really
   bounds the streaming pipeline's working set. The small-SF identity
   phase (streamed vs materialized, device stats byte for byte) and the
   format-selection phase follow once the gate value is captured. --- *)

let scale_sf = 100.0

let scale_identity_sf = 0.1

let scale_heap_gate_mb = 512.0

let peak_heap_mb () =
  float_of_int (Gc.quick_stat ()).Gc.top_heap_words
  *. float_of_int (Sys.word_size / 8)
  /. (1024.0 *. 1024.0)

let zero_io =
  { Vp_storage.Device.elapsed = 0.0; seeks = 0; blocks_read = 0;
    blocks_written = 0 }

let scale_entry ~phase ~table ~sf ~rows ~jobs ~seconds ?(io = zero_io)
    ?(rows_per_sec = 0.0) ~identical ?(cost_plain = 0.0)
    ?(cost_chosen = 0.0) ~detail () =
  {
    Vp_observe.Bench_report.phase;
    table;
    sf;
    rows;
    jobs;
    seconds;
    rows_per_sec;
    peak_heap_mb = peak_heap_mb ();
    io_elapsed = io.Vp_storage.Device.elapsed;
    seeks = io.Vp_storage.Device.seeks;
    blocks_read = io.Vp_storage.Device.blocks_read;
    blocks_written = io.Vp_storage.Device.blocks_written;
    identical;
    cost_plain;
    cost_chosen;
    detail;
  }

(* A bounded prefix of the SF100 lineitem stream, timed for throughput;
   then the last chunk by index — random access near row 600M costs the
   same O(chunk) as chunk 0, the property the pool fan-out builds on.
   Determinism cross-checks: a second generator with the same seed
   reproduces both ends of the stream, and the full SF0.1 digest is
   bitwise equal at jobs 1 and jobs 4. *)
let scale_generate () =
  let gen = Vp_datagen.Rowgen.create () in
  let big = Vp_benchmarks.Tpch.table ~sf:scale_sf "lineitem" in
  let source = Vp_stream.Source.of_rowgen gen big in
  let chunks = Vp_stream.Source.chunk_count source in
  let prefix = 4 in
  let prefix_rows, seconds =
    time (fun () ->
        let rows = ref 0 in
        for c = 0 to prefix - 1 do
          rows := !rows + Array.length (Vp_stream.Source.chunk source c)
        done;
        !rows)
  in
  let last, last_seconds =
    time (fun () -> Vp_stream.Source.chunk source (chunks - 1))
  in
  let source2 =
    Vp_stream.Source.of_rowgen (Vp_datagen.Rowgen.create ()) big
  in
  let replayed =
    Vp_stream.Source.chunk source2 0 = Vp_stream.Source.chunk source 0
    && Vp_stream.Source.chunk source2 (chunks - 1) = last
  in
  let small = Vp_benchmarks.Tpch.table ~sf:scale_identity_sf "lineitem" in
  let digest_at jobs =
    Vp_parallel.Pool.with_pool ~jobs @@ fun pool ->
    Vp_stream.Source.digest ~pool (Vp_stream.Source.of_rowgen gen small)
  in
  let identical = replayed && digest_at 1 = digest_at 4 in
  let rows_per_sec =
    if seconds > 0.0 then float_of_int prefix_rows /. seconds else 0.0
  in
  Printf.printf
    "  generate   %d of %d chunks in %.2f s (%.0f rows/s), tail chunk in \
     %.3f s, jobs 1 = jobs 4 %s\n\
     %!"
    prefix chunks seconds rows_per_sec last_seconds
    (if identical then "ok" else "DIVERGED");
  scale_entry ~phase:"generate" ~table:"lineitem" ~sf:scale_sf
    ~rows:prefix_rows ~jobs:4 ~seconds:(seconds +. last_seconds)
    ~rows_per_sec ~identical
    ~detail:
      (Printf.sprintf "%d-chunk prefix + O(chunk) access to chunk %d" prefix
         (chunks - 1))
    ()

(* Row-to-column transform of SF100 lineitem: pure block-geometry
   accounting (the virtual fast path), so it finishes in seconds without
   touching 90 GB of rows — and a second run replays the identical
   request sequence. *)
let scale_transform () =
  let disk = Vp_experiments.Common.disk in
  let gen = Vp_datagen.Rowgen.create () in
  let table = Vp_benchmarks.Tpch.table ~sf:scale_sf "lineitem" in
  let source = Vp_stream.Source.of_rowgen gen table in
  let layout = Partitioning.column (Table.attribute_count table) in
  let r, seconds =
    time (fun () -> Vp_storage.Creation.transform ~disk table source layout)
  in
  let r2 = Vp_storage.Creation.transform ~disk table source layout in
  let identical = r = r2 in
  Printf.printf
    "  transform  %d -> %d blocks, %.1f simulated s in %.2f wall s  %s\n%!"
    r.Vp_storage.Creation.source_blocks r.Vp_storage.Creation.written_blocks
    r.Vp_storage.Creation.io.Vp_storage.Device.elapsed seconds
    (if identical then "ok" else "DIVERGED");
  scale_entry ~phase:"transform" ~table:"lineitem" ~sf:scale_sf
    ~rows:(Table.row_count table) ~jobs:1 ~seconds
    ~io:r.Vp_storage.Creation.io ~identical
    ~detail:
      (Printf.sprintf "%d source blocks -> %d partition blocks"
         r.Vp_storage.Creation.source_blocks
         r.Vp_storage.Creation.written_blocks)
    ()

(* Build SF100 lineitem as virtual (accounting-only) partition files and
   run the first lineitem query: the executor replays the materialized
   scan's refill schedule without decoding, so the whole thing stays in a
   fixed working set. *)
let scale_scan () =
  let disk = Vp_experiments.Common.disk in
  let gen = Vp_datagen.Rowgen.create () in
  let table = Vp_benchmarks.Tpch.table ~sf:scale_sf "lineitem" in
  let w = Vp_benchmarks.Tpch.workload ~sf:scale_sf "lineitem" in
  let source = Vp_stream.Source.of_rowgen gen table in
  let layout = Partitioning.column (Table.attribute_count table) in
  let db, build_seconds =
    time (fun () ->
        Vp_storage.Database.build ~retain:false ~disk
          ~codec:Vp_storage.Codec.Plain table source layout)
  in
  let q = (Workload.queries w).(0) in
  let r, scan_seconds =
    time (fun () -> Vp_storage.Database.run_query db q)
  in
  let r2 = Vp_storage.Database.run_query db q in
  let identical =
    r = r2 && r.Vp_storage.Database.checksum = 0
    && r.Vp_storage.Database.rows_out = Table.row_count table
  in
  Printf.printf
    "  scan       Q1 over %d rows: %d partitions, %d blocks, %.1f simulated \
     s in %.2f wall s  %s\n\
     %!"
    r.Vp_storage.Database.rows_out r.Vp_storage.Database.partitions_read
    r.Vp_storage.Database.io.Vp_storage.Device.blocks_read
    r.Vp_storage.Database.io.Vp_storage.Device.elapsed scan_seconds
    (if identical then "ok" else "DIVERGED");
  scale_entry ~phase:"scan" ~table:"lineitem" ~sf:scale_sf
    ~rows:r.Vp_storage.Database.rows_out ~jobs:1
    ~seconds:(build_seconds +. scan_seconds) ~io:r.Vp_storage.Database.io
    ~identical
    ~detail:
      (Printf.sprintf "virtual replay, %d partitions read"
         r.Vp_storage.Database.partitions_read)
    ()

(* The identity phase at SF 0.1: the streamed and the materialized paths
   must agree byte for byte — stream digest vs materialized digest,
   transform accounting, build accounting, and a query's device stats
   under the virtual executor vs the decoding one. *)
let scale_identity () =
  let disk = Vp_experiments.Common.disk in
  let gen = Vp_datagen.Rowgen.create () in
  let table = Vp_benchmarks.Tpch.table ~sf:scale_identity_sf "lineitem" in
  let w = Vp_benchmarks.Tpch.workload ~sf:scale_identity_sf "lineitem" in
  let streamed = Vp_stream.Source.of_rowgen gen table in
  let layout = Partitioning.column (Table.attribute_count table) in
  let rows, seconds = time (fun () -> Vp_datagen.Rowgen.rows gen table) in
  let materialized = Vp_stream.Source.of_rows table rows in
  let digest_ok =
    Vp_stream.Source.digest streamed = Vp_stream.Source.digest materialized
  in
  let t_s = Vp_storage.Creation.transform ~disk table streamed layout in
  let t_m = Vp_storage.Creation.transform ~disk table materialized layout in
  let db_v =
    Vp_storage.Database.build ~retain:false ~disk
      ~codec:Vp_storage.Codec.Plain table streamed layout
  in
  let db_m =
    Vp_storage.Database.build ~disk ~codec:Vp_storage.Codec.Plain table
      materialized layout
  in
  let q = (Workload.queries w).(0) in
  let rv = Vp_storage.Database.run_query db_v q in
  let rm = Vp_storage.Database.run_query db_m q in
  let identical =
    digest_ok && t_s = t_m
    && Vp_storage.Database.load_stats db_v
       = Vp_storage.Database.load_stats db_m
    && rv.Vp_storage.Database.io = rm.Vp_storage.Database.io
    && rv.Vp_storage.Database.values_decoded
       = rm.Vp_storage.Database.values_decoded
    && rv.Vp_storage.Database.checksum = 0
  in
  Printf.printf
    "  identity   %d rows: digests %s, transform %s, load %s, query io %s\n%!"
    (Array.length rows)
    (if digest_ok then "equal" else "DIVERGED")
    (if t_s = t_m then "equal" else "DIVERGED")
    (if
       Vp_storage.Database.load_stats db_v
       = Vp_storage.Database.load_stats db_m
     then "equal"
     else "DIVERGED")
    (if rv.Vp_storage.Database.io = rm.Vp_storage.Database.io then "equal"
     else "DIVERGED");
  scale_entry ~phase:"identity" ~table:"lineitem" ~sf:scale_identity_sf
    ~rows:(Array.length rows) ~jobs:1 ~seconds
    ~io:rm.Vp_storage.Database.io ~identical
    ~detail:"streamed vs materialized: digest, transform, build, query io"
    ()

(* Per-partition format selection over the TPC-H line-up: the chosen
   vector must never cost more than all-Plain (choose starts there and
   keeps strict improvements only). *)
let scale_formats () =
  let disk = Vp_experiments.Common.disk in
  let workloads = Vp_benchmarks.Tpch.workloads ~sf:Vp_experiments.Common.sf in
  List.map
    (fun w ->
      let table = Workload.table w in
      let layout = Partitioning.column (Table.attribute_count table) in
      let stats = Vp_storage.Format.schema_stats table in
      let chosen, seconds =
        time (fun () -> Vp_storage.Format.choose disk table w layout stats)
      in
      let plain = Vp_storage.Format.plain table layout in
      let cost_plain =
        Vp_storage.Format.scan_cost disk table w layout plain
      in
      let cost_chosen =
        Vp_storage.Format.scan_cost disk table w layout chosen
      in
      let identical = cost_chosen <= cost_plain +. 1e-9 in
      Printf.printf
        "  formats    %-10s plain %12.3f -> chosen %12.3f  %s\n%!"
        (Table.name table) cost_plain cost_chosen
        (if identical then "ok" else "WORSE");
      scale_entry ~phase:"formats" ~table:(Table.name table)
        ~sf:Vp_experiments.Common.sf ~rows:(Table.row_count table) ~jobs:1
        ~seconds ~identical ~cost_plain ~cost_chosen
        ~detail:(Vp_storage.Format.to_string chosen) ())
    workloads

let scale_section () =
  Vp_observe.Switch.(raise_to Stats);
  print_string
    (Vp_experiments.Common.heading
       "Streaming substrate: constant-memory SF100, identity, formats");
  let generate = scale_generate () in
  let transform = scale_transform () in
  let scan = scale_scan () in
  let sf100_peak = scan.Vp_observe.Bench_report.peak_heap_mb in
  Printf.printf "  SF100 peak heap: %.1f MiB (gate %.0f MiB)\n%!" sf100_peak
    scale_heap_gate_mb;
  let identity = scale_identity () in
  let formats = scale_formats () in
  let entries = generate :: transform :: scan :: identity :: formats in
  let bad =
    List.filter
      (fun (e : Vp_observe.Bench_report.scale_entry) -> not e.identical)
      entries
  in
  List.iter
    (fun (e : Vp_observe.Bench_report.scale_entry) ->
      Printf.printf "  VIOLATION in phase %s (%s)\n%!" e.phase e.table)
    bad;
  if sf100_peak > scale_heap_gate_mb then begin
    Printf.printf "  HEAP GATE EXCEEDED: %.1f MiB > %.0f MiB\n%!" sf100_peak
      scale_heap_gate_mb;
    exit 1
  end;
  if bad <> [] then exit 1;
  entries

(* --- machine-readable bench report (--json): every algorithm over the
   TPC-H line-up with counters on, each with a fresh query-grained cache
   so its hit rate is its own. The counter snapshot merges everything the
   whole bench process recorded — including the sections that ran before
   this one — which is exactly what a trajectory point should capture. --- *)

let mode_name = function
  | `All -> "all"
  | `Experiments -> "experiments"
  | `Bechamel -> "bechamel"
  | `Parallel -> "parallel"
  | `Budget -> "budget"
  | `Online -> "online"
  | `Server -> "server"
  | `Oracle -> "oracle"
  | `Recovery -> "recovery"
  | `Cluster -> "cluster"
  | `Portfolio -> "portfolio"
  | `Scale -> "scale"
  | `Json -> "json"

let json_section ~mode ~jobs ~online ~server ~oracle ~recovery ~cluster
    ~portfolio ~scale path =
  Vp_observe.Switch.(raise_to Stats);
  let disk = Vp_experiments.Common.disk in
  let workloads = Vp_benchmarks.Tpch.workloads ~sf:Vp_experiments.Common.sf in
  let entries =
    List.map
      (fun (a : Partitioner.t) ->
        let cache = Vp_parallel.Cost_cache.create () in
        let (opt, cost), wall =
          time (fun () ->
              List.fold_left
                (fun (opt, cost) w ->
                  let oracle =
                    Vp_parallel.Cost_cache.query_oracle ~cache disk w
                  in
                  let delta = Vp_cost.Io_model.Incremental.factory disk w in
                  let r =
                    Partitioner.exec a
                      (Partitioner.Request.make ~delta ~cost:oracle w)
                  in
                  ( opt +. r.Partitioner.Response.stats.Partitioner.elapsed_seconds,
                    cost +. r.Partitioner.Response.cost ))
                (0.0, 0.0) workloads)
        in
        let s = Vp_parallel.Cost_cache.stats cache in
        {
          Vp_observe.Bench_report.algorithm = a.Partitioner.name;
          wall_seconds = wall;
          optimization_seconds = opt;
          workload_cost = cost;
          cache_hits = s.Vp_parallel.Cost_cache.hits;
          cache_misses = s.Vp_parallel.Cost_cache.misses;
        })
      (Vp_experiments.Common.algorithms_with_baselines disk)
  in
  let snapshot = Vp_observe.Stats.snapshot () in
  let report =
    {
      Vp_observe.Bench_report.benchmark = "tpch";
      scale_factor = Vp_experiments.Common.sf;
      mode = mode_name mode;
      jobs;
      algorithms = entries;
      online;
      server;
      oracle;
      recovery;
      cluster;
      portfolio;
      scale;
      counters = snapshot.Vp_observe.Stats.counters;
      host = Vp_observe.Bench_report.current_host ();
    }
  in
  Vp_observe.Bench_report.write path report;
  Printf.printf
    "\nMachine-readable bench report (schema v%d, %d algorithms) written to \
     %s\n"
    Vp_observe.Bench_report.schema_version
    (List.length entries) path;
  flush stdout

(* --- argument parsing --- *)

let usage () =
  prerr_endline
    "usage: main.exe [--mode \
     all|experiments|bechamel|parallel|budget|online|server|oracle|recovery|cluster|portfolio|scale|json] \
     [--jobs N] [--json PATH]";
  exit 2

let parse_args () =
  let mode = ref `All and jobs = ref None and json = ref None in
  let rec go = function
    | [] -> ()
    | "--mode" :: m :: rest ->
        (mode :=
           match String.lowercase_ascii m with
           | "all" -> `All
           | "experiments" -> `Experiments
           | "bechamel" -> `Bechamel
           | "parallel" -> `Parallel
           | "budget" -> `Budget
           | "online" -> `Online
           | "server" -> `Server
           | "oracle" -> `Oracle
           | "recovery" -> `Recovery
           | "cluster" -> `Cluster
           | "portfolio" -> `Portfolio
           | "scale" -> `Scale
           | "json" -> `Json
           | _ -> usage ());
        go rest
    | "--jobs" :: n :: rest -> (
        match int_of_string_opt n with
        | Some n when n >= 1 ->
            jobs := Some n;
            go rest
        | _ -> usage ())
    | "--json" :: path :: rest ->
        json := Some path;
        go rest
    | _ -> usage ()
  in
  go (List.tl (Array.to_list Sys.argv));
  let jobs =
    match !jobs with Some n -> n | None -> Vp_parallel.Pool.default_jobs ()
  in
  let json =
    match (!json, !mode) with
    | Some path, _ -> Some path
    | None, (`Json | `Online | `Server | `Oracle | `Recovery | `Cluster
            | `Portfolio | `Scale) ->
        Some
          (Printf.sprintf "BENCH_%d.json"
             Vp_observe.Bench_report.schema_version)
    | None, _ -> None
  in
  (!mode, jobs, json)

let () =
  let mode, jobs, json = parse_args () in
  (* Counters on from the start when a JSON report was requested, so the
     snapshot covers every section of this run. *)
  if json <> None then Vp_observe.Switch.(raise_to Stats);
  print_endline
    "Reproduction of 'A Comparison of Knives for Bread Slicing' (VLDB 2013)";
  print_endline
    (Printf.sprintf
       "Unified setting: TPC-H SF %g, %s"
       Vp_experiments.Common.sf
       (Format.asprintf "%a" Vp_cost.Disk.pp Vp_experiments.Common.disk));
  let online, server, oracle, recovery, cluster, portfolio, scale =
    match mode with
    | `All ->
        run_experiments ();
        if not skip_slow then bechamel_section ();
        ([], [], [], [], [], [], [])
    | `Experiments ->
        run_experiments ();
        ([], [], [], [], [], [], [])
    | `Bechamel ->
        bechamel_section ();
        ([], [], [], [], [], [], [])
    | `Parallel ->
        parallel_section jobs;
        ([], [], [], [], [], [], [])
    | `Budget ->
        budget_section ();
        ([], [], [], [], [], [], [])
    | `Online -> (online_section ~jobs, [], [], [], [], [], [])
    | `Server -> ([], server_section (), [], [], [], [], [])
    | `Oracle -> ([], [], oracle_section (), [], [], [], [])
    | `Recovery -> ([], [], [], recovery_section (), [], [], [])
    | `Cluster -> ([], [], [], [], cluster_section (), [], [])
    | `Portfolio -> ([], [], [], [], [], portfolio_section (), [])
    | `Scale ->
        (* Must be the first thing the process does that touches tables:
           the peak-heap gate reads a process-wide high-water mark. *)
        ([], [], [], [], [], [], scale_section ())
    | `Json -> ([], [], [], [], [], [], [])
  in
  (match json with
  | Some path ->
      json_section ~mode ~jobs ~online ~server ~oracle ~recovery ~cluster
        ~portfolio ~scale path
  | None -> ());
  print_endline "\nAll experiments completed."
