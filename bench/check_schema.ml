(* Schema checker for the machine-readable bench output (`bench --json`).
   CI runs it against the emitted file before uploading the artifact:

     check_schema.exe BENCH_5.json

   Exit 0 when the document parses and satisfies the Bench_report schema,
   1 on schema violations (all of them listed), 2 on usage/parse errors. *)

let () =
  match Sys.argv with
  | [| _; path |] -> (
      match Vp_observe.Json.of_file path with
      | Error msg ->
          Printf.eprintf "%s: %s\n" path msg;
          exit 2
      | Ok doc -> (
          match Vp_observe.Bench_report.validate doc with
          | Ok () ->
              let version =
                match Vp_observe.Json.member "schema_version" doc with
                | Some (Vp_observe.Json.Int v) -> v
                | _ -> 0
              in
              let algorithms =
                match Vp_observe.Json.member "algorithms" doc with
                | Some (Vp_observe.Json.List l) -> List.length l
                | _ -> 0
              in
              Printf.printf
                "%s: valid bench report (schema v%d, %d algorithm(s))\n" path
                version algorithms
          | Error errors ->
              Printf.eprintf "%s: invalid bench report:\n" path;
              List.iter (fun e -> Printf.eprintf "  %s\n" e) errors;
              exit 1))
  | _ ->
      prerr_endline "usage: check_schema.exe FILE.json";
      exit 2
