(* Golden layout tests: freeze the layouts the deterministic algorithms
   compute for TPC-H under the default setting (the content of the paper's
   Figure 14). Any change to an algorithm, the cost model or the workload
   encoding that alters a layout shows up here. *)

open Vp_core

let disk = Vp_cost.Disk.default

let layout_of algo_name table_name =
  let w = Vp_benchmarks.Tpch.workload ~sf:10.0 table_name in
  let a = Vp_algorithms.Registry.find algo_name in
  let oracle = Vp_cost.Io_model.oracle disk w in
  (Workload.table w, (Partitioner.exec a (Partitioner.Request.make ~cost:oracle w)).Partitioner.Response.partitioning)

let check_layout algo_name table_name expected_groups =
  let table, got = layout_of algo_name table_name in
  let expected = Partitioning.of_names table expected_groups in
  Alcotest.(check Testutil.partitioning)
    (Printf.sprintf "%s on %s" algo_name table_name)
    expected got

let test_hillclimb_customer () =
  check_layout "HillClimb" "customer"
    [
      [ "CustKey" ]; [ "Name" ]; [ "Address"; "Comment" ]; [ "NationKey" ];
      [ "Phone"; "AcctBal" ]; [ "MktSegment" ];
    ]

let test_hillclimb_partsupp () =
  check_layout "HillClimb" "partsupp"
    [ [ "PartKey"; "SuppKey" ]; [ "AvailQty" ]; [ "SupplyCost" ]; [ "Comment" ] ]

let test_hillclimb_orders_all_singletons () =
  let _, got = layout_of "HillClimb" "orders" in
  Alcotest.(check int) "9 singleton groups" 9 (Partitioning.group_count got)

let test_hillclimb_lineitem () =
  check_layout "HillClimb" "lineitem"
    [
      [ "OrderKey" ]; [ "PartKey" ]; [ "SuppKey" ]; [ "LineNumber" ];
      [ "Quantity" ]; [ "ExtendedPrice"; "Discount" ]; [ "Tax"; "LineStatus" ];
      [ "ReturnFlag" ]; [ "ShipDate" ]; [ "CommitDate"; "ReceiptDate" ];
      [ "ShipInstruct" ]; [ "ShipMode" ]; [ "Comment" ];
    ]

let test_autopart_lineitem_groups_unreferenced () =
  (* The paper's Appendix B detail: AutoPart groups the two unreferenced
     attributes, HillClimb leaves them apart; otherwise identical. *)
  check_layout "AutoPart" "lineitem"
    [
      [ "OrderKey" ]; [ "PartKey" ]; [ "SuppKey" ];
      [ "LineNumber"; "Comment" ]; [ "Quantity" ];
      [ "ExtendedPrice"; "Discount" ]; [ "Tax"; "LineStatus" ];
      [ "ReturnFlag" ]; [ "ShipDate" ]; [ "CommitDate"; "ReceiptDate" ];
      [ "ShipInstruct" ]; [ "ShipMode" ];
    ]

let test_autopart_supplier () =
  check_layout "AutoPart" "supplier"
    [
      [ "SuppKey"; "NationKey" ]; [ "Name" ]; [ "Address" ];
      [ "Phone"; "AcctBal" ]; [ "Comment" ];
    ]

let test_nation_region () =
  check_layout "HillClimb" "region" [ [ "RegionKey"; "Name" ]; [ "Comment" ] ];
  check_layout "HillClimb" "nation"
    [ [ "NationKey"; "Name"; "RegionKey" ]; [ "Comment" ] ]

let test_hillclimb_class_agrees () =
  (* AutoPart, HYRISE, BruteForce and HillClimb must have identical costs
     on every table (the paper's "HillClimb class"). *)
  List.iter
    (fun table_name ->
      let w = Vp_benchmarks.Tpch.workload ~sf:10.0 table_name in
      let oracle = Vp_cost.Io_model.oracle disk w in
      let cost name =
        (Partitioner.exec
           (Vp_algorithms.Registry.find name)
           (Partitioner.Request.make ~cost:oracle w))
          .Partitioner.Response.cost
      in
      let hc = cost "HillClimb" in
      List.iter
        (fun name ->
          Alcotest.(check (Testutil.close ~eps:1e-6 ()))
            (Printf.sprintf "%s = HillClimb on %s" name table_name)
            hc (cost name))
        [ "AutoPart"; "HYRISE" ])
    Vp_benchmarks.Tpch.table_names

(* Navathe/O2P must stay in the "second class": different layouts than
   HillClimb on the big tables. *)
let test_second_class_differs () =
  List.iter
    (fun table_name ->
      let _, hc = layout_of "HillClimb" table_name in
      let _, navathe = layout_of "Navathe" table_name in
      Alcotest.(check bool)
        (Printf.sprintf "Navathe differs on %s" table_name)
        false
        (Partitioning.equal hc navathe))
    [ "customer"; "lineitem"; "orders"; "partsupp"; "supplier" ]

(* SSB sanity: every algorithm yields valid partitionings there too. *)
let test_ssb_validity () =
  List.iter
    (fun w ->
      let oracle = Vp_cost.Io_model.oracle disk w in
      List.iter
        (fun (a : Partitioner.t) ->
          let r = Partitioner.exec a (Partitioner.Request.make ~cost:oracle w) in
          Alcotest.(check bool)
            (Printf.sprintf "%s on ssb %s" a.Partitioner.name
               (Table.name (Workload.table w)))
            true
            (Testutil.valid_partitioning_of_workload r.Partitioner.Response.partitioning
               w))
        (Vp_algorithms.Registry.six @ Vp_algorithms.Registry.baselines))
    (Vp_benchmarks.Ssb.workloads ~sf:10.0)

(* Regression bands for the headline aggregates, so drift in any component
   that moves the reproduced results is caught immediately. *)
let test_reproduction_bands () =
  let total name = (Vp_experiments.Common.find_run name).total_cost in
  let band name lo hi =
    let v = total name in
    Alcotest.(check bool)
      (Printf.sprintf "%s in [%g, %g] (got %g)" name lo hi v)
      true (v >= lo && v <= hi)
  in
  band "HillClimb" 380.0 440.0;
  band "BruteForce" 380.0 440.0;
  band "Column" 395.0 445.0;
  band "Row" 1900.0 2200.0;
  band "Navathe" 450.0 700.0;
  band "O2P" 450.0 700.0;
  band "Trojan" 380.0 460.0;
  let entries name =
    Vp_experiments.Common.entries_of (Vp_experiments.Common.find_run name)
  in
  let unnecessary name =
    Vp_metrics.Measures.Aggregate.unnecessary_data_read disk (entries name)
  in
  Alcotest.(check bool) "HC waste < 5%" true (unnecessary "HillClimb" < 0.05);
  Alcotest.(check bool) "Navathe waste 15-45%" true
    (unnecessary "Navathe" > 0.15 && unnecessary "Navathe" < 0.45);
  Alcotest.(check bool) "Row waste ~83%" true
    (unnecessary "Row" > 0.75 && unnecessary "Row" < 0.90)

(* --- observability goldens ---

   The Chrome trace exporter and the bench-report JSON are wire formats:
   downstream tooling (chrome://tracing, the CI schema checker, the
   driver collecting BENCH_*.json trajectory points) parses them, so
   their exact shape is frozen against checked-in golden files. The
   fixtures use fixed ids and timestamps, which makes the output
   deterministic without any normalization pass. Regenerate after an
   intentional format change with

     cd test && VP_UPDATE_GOLDEN=1 ../_build/default/test/test_main.exe test golden *)

let update_goldens = Sys.getenv_opt "VP_UPDATE_GOLDEN" = Some "1"

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let check_golden name path actual =
  if update_goldens then begin
    let oc = open_out_bin path in
    output_string oc actual;
    close_out oc
  end
  else Alcotest.(check string) name (read_file path) actual

let golden_events =
  [
    {
      Vp_observe.Trace.id = 1; parent = -1; name = "experiment"; domain = 0;
      start_ns = 1_000L; dur_ns = 5_000_000L; args = [];
    };
    {
      Vp_observe.Trace.id = 2; parent = 1; name = "algo:HillClimb"; domain = 0;
      start_ns = 501_000L; dur_ns = 2_250_000L; args = [ ("table", "partsupp") ];
    };
    {
      Vp_observe.Trace.id = 3; parent = 2; name = "pool:cell"; domain = 1;
      start_ns = 1_001_000L; dur_ns = 400_000L; args = [];
    };
  ]

let test_chrome_trace_golden () =
  let actual =
    Vp_observe.Json.to_string ~pretty:true
      (Vp_observe.Trace.to_chrome golden_events)
    ^ "\n"
  in
  check_golden "chrome trace export" "golden/trace_chrome.golden.json" actual

(* Dyadic fixture floats, so the %.12g printer represents them exactly. *)
let golden_report =
  {
    Vp_observe.Bench_report.benchmark = "tpch";
    scale_factor = 10.0;
    mode = "json";
    jobs = 4;
    algorithms =
      [
        {
          Vp_observe.Bench_report.algorithm = "HillClimb";
          wall_seconds = 0.125;
          optimization_seconds = 0.0625;
          workload_cost = 410.25;
          cache_hits = 6000;
          cache_misses = 2000;
        };
        {
          Vp_observe.Bench_report.algorithm = "Navathe";
          wall_seconds = 0.5;
          optimization_seconds = 0.25;
          workload_cost = 536.5;
          cache_hits = 0;
          cache_misses = 0;
        };
      ];
    online =
      [
        {
          Vp_observe.Bench_report.trace = "synthetic-drift";
          queries = 600;
          reopts = 4;
          adopted = 3;
          rejected = 1;
          final_generation = 3;
          online_cost = 1536.5;
          row_cost = 4096.0;
          column_cost = 2048.25;
          oneshot_cost = 1792.75;
          oneshot_algorithm = "HillClimb";
        };
      ];
    server =
      [
        {
          Vp_observe.Bench_report.phase = "throughput-j4";
          server_jobs = 4;
          clients = 4;
          requests = 64;
          shed = 0;
          errors = 0;
          seconds = 0.5;
          throughput_rps = 128.0;
          latency_p50_ms = 8.0;
          latency_p95_ms = 24.0;
          latency_p99_ms = 32.0;
        };
        {
          Vp_observe.Bench_report.phase = "overload";
          server_jobs = 1;
          clients = 6;
          requests = 12;
          shed = 9;
          errors = 0;
          seconds = 1.25;
          throughput_rps = 9.6;
          latency_p50_ms = 64.0;
          latency_p95_ms = 256.0;
          latency_p99_ms = 512.0;
        };
      ];
    oracle =
      [
        {
          Vp_observe.Bench_report.phase = "hillclimb-sweep";
          table = "lineitem";
          attributes = 16;
          atoms = 11;
          full_evals_per_sec = 4096.0;
          delta_evals_per_sec = 65536.0;
          full_query_costs = 15360;
          delta_query_costs = 1536;
          query_cost_ratio = 10.0;
          wall_seconds = 0.25;
        };
      ];
    recovery =
      [
        {
          Vp_observe.Bench_report.phase = "wal-overhead";
          sessions = 1;
          queries = 200;
          wal_appends = 200;
          evictions = 0;
          reattaches = 0;
          recovered = 0;
          seconds = 0.5;
          wal_overhead_ratio = 1.0625;
          byte_identical = true;
        };
        {
          Vp_observe.Bench_report.phase = "spill-restore";
          sessions = 100;
          queries = 2000;
          wal_appends = 0;
          evictions = 0;
          reattaches = 100;
          recovered = 100;
          seconds = 0.25;
          wal_overhead_ratio = 0.0;
          byte_identical = true;
        };
      ];
    cluster =
      [
        {
          Vp_observe.Bench_report.phase = "closed-loop";
          shards = 3;
          clients = 8;
          sessions = 10000;
          requests = 50000;
          shed = 16;
          errors = 0;
          seconds = 12.5;
          throughput_rps = 4000.0;
          shed_rate = 0.0003125;
          latency_p50_ms = 0.5;
          latency_p99_ms = 16.0;
          handoffs = 0;
          handoff_seconds = 0.0;
          restarts = 0;
          determinism_violations = 0;
        };
        {
          Vp_observe.Bench_report.phase = "handoff";
          shards = 4;
          clients = 8;
          sessions = 48;
          requests = 2496;
          shed = 12;
          errors = 0;
          seconds = 0.5;
          throughput_rps = 4992.0;
          shed_rate = 0.0048828125;
          latency_p50_ms = 0.25;
          latency_p99_ms = 32.0;
          handoffs = 11;
          handoff_seconds = 0.0625;
          restarts = 0;
          determinism_violations = 0;
        };
      ];
    portfolio =
      [
        {
          Vp_observe.Bench_report.table = "customer";
          winner = "HillClimb";
          portfolio_cost = 410.25;
          best_single = "HillClimb";
          best_single_cost = 410.25;
          entrants_run = 11;
          timed_out = 2;
          race_seconds = 0.25;
          never_worse = true;
        };
      ];
    scale =
      [
        {
          Vp_observe.Bench_report.phase = "scan";
          table = "lineitem";
          sf = 100.0;
          rows = 600000000;
          jobs = 1;
          seconds = 0.5;
          rows_per_sec = 0.0;
          peak_heap_mb = 96.0;
          io_elapsed = 1024.5;
          seeks = 40960;
          blocks_read = 11534336;
          blocks_written = 0;
          identical = true;
          cost_plain = 0.0;
          cost_chosen = 0.0;
          detail = "virtual replay";
        };
        {
          Vp_observe.Bench_report.phase = "formats";
          table = "customer";
          sf = 10.0;
          rows = 1500000;
          jobs = 1;
          seconds = 0.0625;
          rows_per_sec = 0.0;
          peak_heap_mb = 96.0;
          io_elapsed = 0.0;
          seeks = 0;
          blocks_read = 0;
          blocks_written = 0;
          identical = true;
          cost_plain = 512.5;
          cost_chosen = 410.25;
          detail = "plain,dictionary";
        };
      ];
    counters = [ ("cost.oracle_calls", 42); ("pool.tasks_run", 7) ];
    host =
      {
        Vp_observe.Bench_report.hostname = "golden";
        os = "Unix";
        arch = "64-bit";
        ocaml_version = "5.1.1";
        word_size = 64;
        recommended_domains = 8;
      };
  }

let test_bench_report_golden () =
  let actual =
    Vp_observe.Json.to_string ~pretty:true
      (Vp_observe.Bench_report.to_json golden_report)
    ^ "\n"
  in
  check_golden "bench report schema" "golden/bench_report.golden.json" actual

let test_bench_report_schema_roundtrip () =
  (* The emitted report must parse back and satisfy its own validator —
     the same check CI's check_schema.exe runs on the real BENCH file. *)
  let text = Vp_observe.Json.to_string (Vp_observe.Bench_report.to_json golden_report) in
  match Vp_observe.Json.of_string text with
  | Error msg -> Alcotest.failf "report does not re-parse: %s" msg
  | Ok doc -> (
      (match Vp_observe.Bench_report.validate doc with
      | Ok () -> ()
      | Error errors ->
          Alcotest.failf "valid report rejected: %s" (String.concat "; " errors));
      (* And the validator actually bites: strip a required field and
         mistype another, expect both violations reported. *)
      let mutate = function
        | Vp_observe.Json.Obj fields ->
            Vp_observe.Json.Obj
              (List.filter_map
                 (fun (k, v) ->
                   match k with
                   | "algorithms" -> None
                   | "schema_version" -> Some (k, Vp_observe.Json.String "3")
                   | _ -> Some (k, v))
                 fields)
        | j -> j
      in
      match Vp_observe.Bench_report.validate (mutate doc) with
      | Ok () -> Alcotest.fail "mutated report accepted"
      | Error errors ->
          let mentions field = List.exists (fun e ->
              let nh = String.length e and nn = String.length field in
              let rec go i = i + nn <= nh && (String.sub e i nn = field || go (i + 1)) in
              go 0) errors
          in
          Alcotest.(check bool) "missing algorithms reported" true
            (mentions "algorithms");
          Alcotest.(check bool) "mistyped schema_version reported" true
            (mentions "schema_version"))

let suite =
  [
    Alcotest.test_case "HillClimb customer" `Quick test_hillclimb_customer;
    Alcotest.test_case "HillClimb partsupp" `Quick test_hillclimb_partsupp;
    Alcotest.test_case "HillClimb orders" `Quick
      test_hillclimb_orders_all_singletons;
    Alcotest.test_case "HillClimb lineitem" `Quick test_hillclimb_lineitem;
    Alcotest.test_case "AutoPart lineitem" `Quick
      test_autopart_lineitem_groups_unreferenced;
    Alcotest.test_case "AutoPart supplier" `Quick test_autopart_supplier;
    Alcotest.test_case "nation/region" `Quick test_nation_region;
    Alcotest.test_case "HillClimb class agrees" `Quick test_hillclimb_class_agrees;
    Alcotest.test_case "second class differs" `Quick test_second_class_differs;
    Alcotest.test_case "SSB validity" `Quick test_ssb_validity;
    Alcotest.test_case "reproduction bands" `Slow test_reproduction_bands;
    Alcotest.test_case "chrome trace export" `Quick test_chrome_trace_golden;
    Alcotest.test_case "bench report schema" `Quick test_bench_report_golden;
    Alcotest.test_case "bench report round-trip" `Quick
      test_bench_report_schema_roundtrip;
  ]
