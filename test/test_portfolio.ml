(* The racing portfolio and its two new entrants.

   - Winner determinism: the winning (entrant, cost, layout) triple is
     byte-identical at --jobs 1 and --jobs 4 — the race's cancellation
     rule only ever cancels entrants that could at best tie a completed
     lower-indexed layout, so scheduling cannot change the winner.
   - Cancellation: a cancelled run (pre-set or flipped mid-search)
     surfaces a valid best-so-far layout as [Timed_out], for every
     registered algorithm.
   - Never worse: under equal step budgets the portfolio's cost is <=
     every single entrant's.
   - ILP exactness: with the admissible I/O bound, ILP's cost equals
     BruteForce's bit-for-bit on small tables (both are exact searches;
     they differ only in branching order and bound).
   - Hypergraph invariants: validity, never costlier than the atom
     layout it starts from, and the connectivity-cut metric's anchor
     points (row = 0, column = sum w_q (|refs| - 1), monotone under
     merges). *)

open Vp_core

let disk = Vp_cost.Disk.default

(* A random (table, workload) pair, [n_max] attributes at most — the
   same deterministic SplitMix64 idiom as test_invariants. *)
let random_workload ?(n_max = 8) root i =
  let g = Vp_datagen.Prng.split root i in
  let n = Vp_datagen.Prng.int_in g 2 n_max in
  let attributes =
    List.init n (fun j ->
        Attribute.make
          (Printf.sprintf "c%d" j)
          (match j mod 3 with
          | 0 -> Attribute.Int32
          | 1 -> Attribute.Decimal
          | _ -> Attribute.Char (5 + j)))
  in
  let rows = Vp_datagen.Prng.int_in g 1_000 500_000 in
  let table =
    Table.make ~name:(Printf.sprintf "rand%d" i) ~attributes ~row_count:rows
  in
  let q_count = Vp_datagen.Prng.int_in g 1 6 in
  let queries =
    List.init q_count (fun j ->
        let mask = 1 + Vp_datagen.Prng.int g ((1 lsl n) - 1) in
        Query.make
          ~name:(Printf.sprintf "q%d" j)
          ~weight:(1.0 +. Vp_datagen.Prng.float g 4.0)
          ~references:(Attr_set.of_mask mask)
          ())
  in
  Workload.make table queries

let winner_of (r : Partitioner.Response.t) =
  match
    List.find_opt
      (fun (e : Partitioner.Response.entrant) -> e.winner)
      r.provenance.Partitioner.Response.entrants
  with
  | Some e -> e.Partitioner.Response.entrant
  | None -> Alcotest.fail "portfolio response carries no winning entrant"

let render_winner (r : Partitioner.Response.t) =
  Printf.sprintf "%s cost=%Lx layout=%s" (winner_of r)
    (Int64.bits_of_float r.cost)
    (Partitioning.to_string r.partitioning)

(* The race result — winning entrant, cost bits, layout — must not
   depend on the pool width. Loser statuses may (a straggler that gets
   cancelled at jobs 1 may finish at jobs 4), so only the winner and
   the response's own fields are compared. *)
let test_determinism_across_jobs () =
  let root = Vp_datagen.Prng.create 0xF0120L in
  for i = 0 to 9 do
    let w = random_workload root i in
    let run jobs =
      let algo = Vp_algorithms.Portfolio.with_bound ~jobs disk in
      let oracle = Vp_cost.Io_model.oracle disk w in
      let delta = Vp_cost.Io_model.Incremental.factory disk w in
      let budget = Vp_robust.Budget.create ~max_steps:400 () in
      Partitioner.exec algo
        (Partitioner.Request.make ~budget ~delta ~cost:oracle w)
    in
    let r1 = run 1 and r4 = run 4 in
    Alcotest.(check string)
      (Printf.sprintf "pair %d: winner identical at jobs 1 and 4" i)
      (render_winner r1) (render_winner r4);
    Alcotest.(check bool)
      (Printf.sprintf "pair %d: winner layout valid" i)
      true
      (Testutil.valid_partitioning_of_workload
         r1.Partitioner.Response.partitioning w)
  done

(* Every registered algorithm — the portfolio included — must answer a
   pre-cancelled request with a valid [Timed_out] best-so-far layout. *)
let test_cancelled_before_start () =
  let root = Vp_datagen.Prng.create 0xCA7CE1L in
  for i = 0 to 4 do
    let w = random_workload root i in
    let oracle = Vp_cost.Io_model.oracle disk w in
    List.iter
      (fun (a : Partitioner.t) ->
        let ctx = Printf.sprintf "%s on pair %d, pre-cancelled" a.name i in
        let cancel = Atomic.make true in
        let r =
          Partitioner.exec a
            (Partitioner.Request.make ~cancel ~cost:oracle w)
        in
        Alcotest.(check bool)
          (ctx ^ ": valid best-so-far layout") true
          (Testutil.valid_partitioning_of_workload
             r.Partitioner.Response.partitioning w);
        match r.Partitioner.Response.status with
        | Partitioner.Timed_out _ -> ()
        | Partitioner.Complete -> Alcotest.failf "%s: reported Complete" ctx)
      Vp_algorithms.Registry.all
  done

(* Mid-run cancellation: the cost oracle itself flips the signal after a
   few calls, so the cancel lands at an arbitrary point of the search.
   The run must still answer a valid layout; its status must be
   [Timed_out] whenever the search had budget-checked work left (an
   algorithm that happened to finish before its next tick may honestly
   report [Complete] — both are valid under the contract, invalid
   layouts and crashes are not). *)
let test_cancelled_mid_run () =
  let root = Vp_datagen.Prng.create 0x317DCA7L in
  for i = 0 to 4 do
    let w = random_workload root i in
    let oracle = Vp_cost.Io_model.oracle disk w in
    List.iter
      (fun (a : Partitioner.t) ->
        let ctx = Printf.sprintf "%s on pair %d, cancelled mid-run" a.name i in
        let cancel = Atomic.make false in
        let calls = Atomic.make 0 in
        let tripwire p =
          if Atomic.fetch_and_add calls 1 >= 5 then Atomic.set cancel true;
          oracle p
        in
        let r =
          Partitioner.exec a
            (Partitioner.Request.make ~cancel ~cost:tripwire w)
        in
        Alcotest.(check bool)
          (ctx ^ ": valid best-so-far layout") true
          (Testutil.valid_partitioning_of_workload
             r.Partitioner.Response.partitioning w))
      Vp_algorithms.Registry.all
  done

(* Equal budgets: each entrant races on a [Budget.spawn] of the request
   budget — exactly a solo run's allowance — and the winner is the
   cheapest response, so the portfolio can never be costlier than any
   entrant run solo under the same step budget. *)
let test_never_worse_than_singles () =
  let root = Vp_datagen.Prng.create 0xBE57L in
  let entrants = Vp_algorithms.Portfolio.default_entrants () in
  for i = 0 to 7 do
    let w = random_workload root i in
    let oracle = Vp_cost.Io_model.oracle disk w in
    let delta = Vp_cost.Io_model.Incremental.factory disk w in
    let steps = 300 in
    let race =
      let budget = Vp_robust.Budget.create ~max_steps:steps () in
      Partitioner.exec
        (Vp_algorithms.Portfolio.make ~jobs:2 ())
        (Partitioner.Request.make ~budget ~delta ~cost:oracle w)
    in
    List.iter
      (fun (a : Partitioner.t) ->
        let budget = Vp_robust.Budget.create ~max_steps:steps () in
        let solo =
          Partitioner.exec a
            (Partitioner.Request.make ~budget ~delta ~cost:oracle w)
        in
        Alcotest.(check bool)
          (Printf.sprintf
             "pair %d: portfolio (%g) <= solo %s (%g) under %d steps" i
             race.Partitioner.Response.cost a.name
             solo.Partitioner.Response.cost steps)
          true
          (race.Partitioner.Response.cost
          <= solo.Partitioner.Response.cost))
      entrants
  done

(* Two exact searches, one answer: with the admissible I/O bound wired,
   ILP must price its layout exactly like BruteForce on every small
   table — same cost bits under the same oracle. *)
let test_ilp_matches_brute_force () =
  let root = Vp_datagen.Prng.create 0x11BF0L in
  let ilp = Vp_algorithms.Ilp.with_bound disk in
  let bf =
    Vp_algorithms.Brute_force.make
      ~lower_bound:(Vp_cost.Bounds.io_brute_force disk) ()
  in
  for i = 0 to 11 do
    let w = random_workload ~n_max:10 root i in
    let oracle = Vp_cost.Io_model.oracle disk w in
    let run a = Partitioner.exec a (Partitioner.Request.make ~cost:oracle w) in
    let ri = run ilp and rb = run bf in
    Alcotest.(check string)
      (Printf.sprintf "pair %d: ILP cost = BruteForce cost (bits)" i)
      (Printf.sprintf "%Lx" (Int64.bits_of_float rb.Partitioner.Response.cost))
      (Printf.sprintf "%Lx" (Int64.bits_of_float ri.Partitioner.Response.cost));
    Alcotest.(check bool)
      (Printf.sprintf "pair %d: ILP layout valid" i)
      true
      (Testutil.valid_partitioning_of_workload
         ri.Partitioner.Response.partitioning w)
  done

(* --- hypergraph invariants (QCheck2) --- *)

let atoms_layout w =
  Partitioning.of_groups
    ~n:(Table.attribute_count (Workload.table w))
    (Workload.primary_partitions w)

let hypergraph_valid_and_never_above_atoms =
  QCheck2.Test.make ~count:60
    ~name:"hypergraph: valid layout, never costlier than the atom layout"
    (Testutil.gen_workload 6 4)
    (fun w ->
      let oracle = Vp_cost.Io_model.oracle disk w in
      let r =
        Partitioner.exec Vp_algorithms.Hypergraph.algorithm
          (Partitioner.Request.make ~cost:oracle w)
      in
      Testutil.valid_partitioning_of_workload
        r.Partitioner.Response.partitioning w
      && r.Partitioner.Response.cost <= oracle (atoms_layout w))

let hypergraph_cut_anchors =
  QCheck2.Test.make ~count:60
    ~name:"hypergraph: cut(row) = 0, cut(column) = sum w (|refs| - 1)"
    (Testutil.gen_workload 6 4)
    (fun w ->
      let n = Table.attribute_count (Workload.table w) in
      let row = Vp_algorithms.Hypergraph.connectivity_cut w
          (Partitioning.row n)
      in
      let expected_col =
        Array.fold_left
          (fun acc q ->
            acc
            +. Query.weight q
               *. float_of_int (Attr_set.cardinal (Query.references q) - 1))
          0.0 (Workload.queries w)
      in
      let col =
        Vp_algorithms.Hypergraph.connectivity_cut w (Partitioning.column n)
      in
      row = 0.0 && abs_float (col -. expected_col) <= 1e-9)

let hypergraph_cut_monotone_under_merge =
  QCheck2.Test.make ~count:60
    ~name:"hypergraph: merging two groups never increases the cut"
    QCheck2.Gen.(pair (Testutil.gen_workload 6 4) (int_range 0 1000))
    (fun (w, seed) ->
      let n = Table.attribute_count (Workload.table w) in
      let state = Random.State.make [| seed |] in
      let p = Enumeration.random_partitioning (Random.State.int state) n in
      match Partitioning.groups p with
      | a :: b :: rest ->
          let merged =
            Partitioning.of_groups ~n (Attr_set.union a b :: rest)
          in
          Vp_algorithms.Hypergraph.connectivity_cut w merged
          <= Vp_algorithms.Hypergraph.connectivity_cut w p +. 1e-9
      | _ -> true)

let suite =
  [
    Alcotest.test_case "race winner identical at jobs 1 and 4" `Quick
      test_determinism_across_jobs;
    Alcotest.test_case "cancelled before start: valid Timed_out" `Quick
      test_cancelled_before_start;
    Alcotest.test_case "cancelled mid-run: valid best-so-far" `Quick
      test_cancelled_mid_run;
    Alcotest.test_case "portfolio never worse than any single entrant" `Quick
      test_never_worse_than_singles;
    Alcotest.test_case "ILP matches BruteForce bit-for-bit" `Quick
      test_ilp_matches_brute_force;
    Testutil.qtest hypergraph_valid_and_never_above_atoms;
    Testutil.qtest hypergraph_cut_anchors;
    Testutil.qtest hypergraph_cut_monotone_under_merge;
  ]
