open Vp_core

let disk = Vp_cost.Disk.default

let brute_force =
  Vp_algorithms.Brute_force.make
    ~lower_bound:(fun w -> Vp_cost.Bounds.io_brute_force disk w)
    ()

let all_algorithms =
  Vp_algorithms.Registry.with_brute_force ~brute_force ()
  @ Vp_algorithms.Registry.baselines

let tpch_workloads = lazy (Vp_benchmarks.Tpch.workloads ~sf:1.0)

(* Every algorithm must return a valid partitioning on every TPC-H table. *)
let test_validity_on_tpch () =
  List.iter
    (fun w ->
      let oracle = Vp_cost.Io_model.oracle disk w in
      List.iter
        (fun (a : Partitioner.t) ->
          let r = Partitioner.exec a (Partitioner.Request.make ~cost:oracle w) in
          Alcotest.(check bool)
            (Printf.sprintf "%s on %s valid" a.Partitioner.name
               (Table.name (Workload.table w)))
            true
            (Testutil.valid_partitioning_of_workload r.Partitioner.Response.partitioning w))
        all_algorithms)
    (Lazy.force tpch_workloads)

(* Reported cost must equal the oracle's evaluation of the returned
   layout. *)
let test_cost_is_consistent () =
  let w = Vp_benchmarks.Tpch.workload ~sf:1.0 "customer" in
  let oracle = Vp_cost.Io_model.oracle disk w in
  List.iter
    (fun (a : Partitioner.t) ->
      let r = Partitioner.exec a (Partitioner.Request.make ~cost:oracle w) in
      Alcotest.(check (Testutil.close ~eps:1e-9 ()))
        (a.Partitioner.name ^ " cost matches oracle")
        (oracle r.Partitioner.Response.partitioning)
        r.Partitioner.Response.cost)
    all_algorithms

(* HillClimb starts from column layout and only merges on improvement, so
   its result can never be worse than column. *)
let test_hillclimb_beats_column () =
  List.iter
    (fun w ->
      let n = Table.attribute_count (Workload.table w) in
      let oracle = Vp_cost.Io_model.oracle disk w in
      let r = Partitioner.exec Vp_algorithms.Hillclimb.algorithm (Partitioner.Request.make ~cost:oracle w) in
      Alcotest.(check bool)
        (Table.name (Workload.table w))
        true
        (r.Partitioner.Response.cost <= oracle (Partitioning.column n) +. 1e-9))
    (Lazy.force tpch_workloads)

(* AutoPart starts from the atomic fragments and only merges on
   improvement. *)
let test_autopart_beats_atoms () =
  List.iter
    (fun w ->
      let n = Table.attribute_count (Workload.table w) in
      let oracle = Vp_cost.Io_model.oracle disk w in
      let atoms =
        Partitioning.of_groups ~n (Workload.primary_partitions w)
      in
      let r = Partitioner.exec Vp_algorithms.Autopart.algorithm (Partitioner.Request.make ~cost:oracle w) in
      Alcotest.(check bool)
        (Table.name (Workload.table w))
        true
        (r.Partitioner.Response.cost <= oracle atoms +. 1e-9))
    (Lazy.force tpch_workloads)

(* The dictionary variant of HillClimb must find the same layout. *)
let test_hillclimb_dictionary_same () =
  List.iter
    (fun w ->
      let oracle = Vp_cost.Io_model.oracle disk w in
      let a = Partitioner.exec Vp_algorithms.Hillclimb.algorithm (Partitioner.Request.make ~cost:oracle w) in
      let b = Partitioner.exec Vp_algorithms.Hillclimb.with_dictionary (Partitioner.Request.make ~cost:oracle w) in
      Alcotest.(check Testutil.partitioning)
        (Table.name (Workload.table w))
        a.Partitioner.Response.partitioning b.Partitioner.Response.partitioning)
    (Lazy.force tpch_workloads)

(* BruteForce with the lower bound must equal BruteForce without it. *)
let test_brute_force_bound_exactness () =
  List.iter
    (fun table_name ->
      let w = Vp_benchmarks.Tpch.workload ~sf:1.0 table_name in
      let oracle = Vp_cost.Io_model.oracle disk w in
      let with_lb = Partitioner.exec brute_force (Partitioner.Request.make ~cost:oracle w) in
      let without_lb =
        Partitioner.exec
          (Vp_algorithms.Brute_force.make ())
          (Partitioner.Request.make ~cost:oracle w)
      in
      Alcotest.(check (Testutil.close ~eps:1e-9 ()))
        (table_name ^ " same optimal cost")
        without_lb.Partitioner.Response.cost with_lb.Partitioner.Response.cost)
    [ "customer"; "supplier"; "partsupp"; "nation"; "region" ]

(* Primary-partition search must match raw attribute-level search (the
   merging of always-co-accessed attributes is lossless under this cost
   model) on tables small enough for both. *)
let test_brute_force_atoms_lossless () =
  List.iter
    (fun table_name ->
      let w = Vp_benchmarks.Tpch.workload ~sf:1.0 table_name in
      let oracle = Vp_cost.Io_model.oracle disk w in
      let atoms = Partitioner.exec brute_force (Partitioner.Request.make ~cost:oracle w) in
      let raw =
        Partitioner.exec
          (Vp_algorithms.Brute_force.make ~use_atoms:false
             ~lower_bound:(fun w -> Vp_cost.Bounds.io_brute_force disk w)
             ())
          (Partitioner.Request.make ~cost:oracle w)
      in
      Alcotest.(check (Testutil.close ~eps:1e-9 ()))
        (table_name ^ " atoms = raw")
        raw.Partitioner.Response.cost atoms.Partitioner.Response.cost)
    [ "customer"; "supplier"; "partsupp"; "region"; "nation" ]

(* BruteForce must never lose to any heuristic. *)
let test_brute_force_optimal_on_tpch () =
  List.iter
    (fun w ->
      let oracle = Vp_cost.Io_model.oracle disk w in
      let bf = (Partitioner.exec brute_force (Partitioner.Request.make ~cost:oracle w)).Partitioner.Response.cost in
      List.iter
        (fun (a : Partitioner.t) ->
          let r = Partitioner.exec a (Partitioner.Request.make ~cost:oracle w) in
          Alcotest.(check bool)
            (Printf.sprintf "BF <= %s on %s" a.Partitioner.name
               (Table.name (Workload.table w)))
            true
            (bf <= r.Partitioner.Response.cost +. 1e-9))
        all_algorithms)
    (Lazy.force tpch_workloads)

(* Without a lower bound, oversized search spaces must be refused. *)
let test_brute_force_refuses_huge_space () =
  let w = Vp_benchmarks.Tpch.workload ~sf:1.0 "lineitem" in
  let oracle = Vp_cost.Io_model.oracle disk w in
  let tiny_budget =
    Vp_algorithms.Brute_force.make ~max_candidates:100 ()
  in
  Alcotest.(check bool)
    "raises" true
    (match Partitioner.exec tiny_budget (Partitioner.Request.make ~cost:oracle w) with
    | _ -> false
    | exception Invalid_argument _ -> true)

(* O2P's offline entry point must match the last step of the online
   simulation. *)
let test_o2p_online_consistent () =
  let w = Vp_benchmarks.Tpch.workload ~sf:1.0 "orders" in
  let oracle = Vp_cost.Io_model.oracle disk w in
  let offline = Partitioner.exec Vp_algorithms.O2p.algorithm (Partitioner.Request.make ~cost:oracle w) in
  let online =
    Vp_algorithms.O2p.online w (fun prefix -> Vp_cost.Io_model.oracle disk prefix)
  in
  let _, last_layout, _ = List.nth online (List.length online - 1) in
  Alcotest.(check Testutil.partitioning)
    "same final layout" offline.Partitioner.Response.partitioning last_layout;
  Alcotest.(check int)
    "one step per query" (Workload.query_count w) (List.length online)

(* Unreferenced attributes must never be merged with referenced ones by the
   cost-guided algorithms (reading them would be pure waste). *)
let test_no_waste_from_unreferenced () =
  List.iter
    (fun w ->
      let unref = Workload.unreferenced_attributes w in
      if not (Attr_set.is_empty unref) then begin
        let oracle = Vp_cost.Io_model.oracle disk w in
        List.iter
          (fun name ->
            let a = Vp_algorithms.Registry.find name in
            let r = Partitioner.exec a (Partitioner.Request.make ~cost:oracle w) in
            List.iter
              (fun g ->
                if Attr_set.intersects g unref then
                  Alcotest.(check bool)
                    (Printf.sprintf "%s on %s: group %s purely unreferenced"
                       name
                       (Table.name (Workload.table w))
                       (Attr_set.to_string g))
                    true (Attr_set.subset g unref))
              (Partitioning.groups r.Partitioner.Response.partitioning))
          [ "HillClimb"; "AutoPart"; "HYRISE" ]
      end)
    (Lazy.force tpch_workloads)

(* Stats sanity: all algorithms fill in timing and candidate counters. *)
let test_stats_populated () =
  let w = Vp_benchmarks.Tpch.workload ~sf:1.0 "part" in
  let oracle = Vp_cost.Io_model.oracle disk w in
  List.iter
    (fun (a : Partitioner.t) ->
      let r = Partitioner.exec a (Partitioner.Request.make ~cost:oracle w) in
      Alcotest.(check bool)
        (a.Partitioner.name ^ " non-negative time")
        true
        (r.Partitioner.Response.stats.Partitioner.elapsed_seconds >= 0.0);
      Alcotest.(check bool)
        (a.Partitioner.name ^ " calls <= candidates+1")
        true
        (r.Partitioner.Response.stats.Partitioner.cost_calls
        <= r.Partitioner.Response.stats.Partitioner.candidates + 1))
    all_algorithms

(* --- properties on random workloads --- *)

(* Oracle shared by the property tests: a small random workload over 6
   attributes, where exact search over raw attributes is instant. *)
let prop_brute_force_optimal_random =
  QCheck2.Test.make ~name:"BruteForce optimal on random workloads" ~count:25
    (Testutil.gen_workload 6 5)
    (fun w ->
      let oracle = Vp_cost.Io_model.oracle disk w in
      let raw =
        Vp_algorithms.Brute_force.make ~use_atoms:false ()
      in
      let bf = (Partitioner.exec raw (Partitioner.Request.make ~cost:oracle w)).Partitioner.Response.cost in
      List.for_all
        (fun (a : Partitioner.t) ->
          let r = Partitioner.exec a (Partitioner.Request.make ~cost:oracle w) in
          bf <= r.Partitioner.Response.cost +. 1e-9)
        (Vp_algorithms.Registry.six @ Vp_algorithms.Registry.baselines))

let prop_all_valid_random =
  QCheck2.Test.make ~name:"all algorithms valid on random workloads" ~count:50
    (Testutil.gen_workload 7 6)
    (fun w ->
      let oracle = Vp_cost.Io_model.oracle disk w in
      List.for_all
        (fun (a : Partitioner.t) ->
          let r = Partitioner.exec a (Partitioner.Request.make ~cost:oracle w) in
          Testutil.valid_partitioning_of_workload r.Partitioner.Response.partitioning w)
        all_algorithms)

let prop_brute_force_atoms_lossless_random =
  QCheck2.Test.make ~name:"atoms search = raw search on random workloads"
    ~count:25 (Testutil.gen_workload 6 4)
    (fun w ->
      let oracle = Vp_cost.Io_model.oracle disk w in
      let atoms =
        (Partitioner.exec
           (Vp_algorithms.Brute_force.make ())
           (Partitioner.Request.make ~cost:oracle w))
          .Partitioner.Response.cost
      in
      let raw =
        (Partitioner.exec
           (Vp_algorithms.Brute_force.make ~use_atoms:false ())
           (Partitioner.Request.make ~cost:oracle w))
          .Partitioner.Response.cost
      in
      Float.abs (atoms -. raw) < 1e-9)

let suite =
  [
    Alcotest.test_case "validity on TPC-H" `Quick test_validity_on_tpch;
    Alcotest.test_case "cost consistent with oracle" `Quick test_cost_is_consistent;
    Alcotest.test_case "HillClimb beats column" `Quick test_hillclimb_beats_column;
    Alcotest.test_case "AutoPart beats atoms" `Quick test_autopart_beats_atoms;
    Alcotest.test_case "HillClimb dictionary same result" `Quick
      test_hillclimb_dictionary_same;
    Alcotest.test_case "BruteForce bound exactness" `Quick
      test_brute_force_bound_exactness;
    Alcotest.test_case "BruteForce atoms lossless" `Quick
      test_brute_force_atoms_lossless;
    Alcotest.test_case "BruteForce optimal on TPC-H" `Slow
      test_brute_force_optimal_on_tpch;
    Alcotest.test_case "BruteForce refuses huge spaces" `Quick
      test_brute_force_refuses_huge_space;
    Alcotest.test_case "O2P online consistency" `Quick test_o2p_online_consistent;
    Alcotest.test_case "no waste from unreferenced attrs" `Quick
      test_no_waste_from_unreferenced;
    Alcotest.test_case "stats populated" `Quick test_stats_populated;
    Testutil.qtest prop_brute_force_optimal_random;
    Testutil.qtest prop_all_valid_random;
    Testutil.qtest prop_brute_force_atoms_lossless_random;
  ]
