(* The layout server: wire protocol, concurrency, backpressure and the
   session determinism contract.

   The acceptance test here is [concurrent sessions deterministic]: K
   concurrent clients replaying interleaved query streams into their own
   sessions must each end with a decision history byte-identical to a
   sequential in-process [Vp_online.Replay] of the same stream — for
   server --jobs 1 and 4, with tracing off and on. The fuzz test feeds
   the daemon truncated, malformed and oversized frames plus mid-request
   disconnects and requires clean [error] replies on a still-live
   connection, never a dropped daemon or a leaked session. *)

open Vp_core
module Json = Vp_observe.Json
module Protocol = Vp_server.Protocol
module Client = Vp_client.Client

(* Daemons bind port 0 and report the bound port — see the port
   discipline note in [Testutil]. *)
let with_daemon = Testutil.with_daemon

let with_client = Testutil.with_client

let unwrap = Testutil.unwrap

let contains = Testutil.contains

let small_workload =
  lazy
    (Vp_benchmarks.Synthetic.workload ~seed:3L ~rows:100_000 ~attributes:8
       ~clusters:3 ~queries:12 ~scatter:0.1 ())

(* --- basics --- *)

let test_ping_stats () =
  with_daemon (fun port ->
      with_client port (fun c ->
          Alcotest.(check int)
            "protocol version" Protocol.protocol_version
            (unwrap (Client.ping c));
          let stats = unwrap (Client.server_stats c) in
          Alcotest.(check string) "ok" "ok" (Protocol.reply_status stats);
          Alcotest.(check (option int))
            "no sessions" (Some 0)
            (Protocol.int_field "sessions" stats)))

let test_partition_matches_local () =
  let w = Lazy.force small_workload in
  let disk = Vp_cost.Disk.default in
  let oracle = Vp_cost.Io_model.oracle disk w in
  let local =
    Partitioner.exec Vp_algorithms.Hillclimb.algorithm
      (Partitioner.Request.make ~cost:oracle w)
  in
  with_daemon (fun port ->
      with_client port (fun c ->
          let reply =
            unwrap (Client.partition ~algorithm:"HillClimb" ~buffer_mb:8.0 c w)
          in
          (match Protocol.float_field "cost" reply with
          | Some cost ->
              Alcotest.(check (float 1e-6))
                "cost matches local exec" local.Partitioner.Response.cost cost
          | None -> Alcotest.fail "reply has no cost");
          let expected_layout =
            Json.to_string
              (Protocol.layout_to_json (Workload.table w)
                 local.Partitioner.Response.partitioning)
          in
          (match Json.member "layout" reply with
          | Some l ->
              Alcotest.(check string)
                "layout matches local exec" expected_layout (Json.to_string l)
          | None -> Alcotest.fail "reply has no layout");
          Alcotest.(check (option string))
            "status complete" (Some "complete")
            (Protocol.string_field "run_status" reply)))

let test_budget_degrades () =
  let w = Lazy.force small_workload in
  with_daemon (fun port ->
      with_client port (fun c ->
          let reply =
            unwrap
              (Client.partition ~algorithm:"BruteForce" ~budget_steps:5 c w)
          in
          Alcotest.(check (option string))
            "tiny budget times out" (Some "timed_out")
            (Protocol.string_field "run_status" reply);
          match Json.member "layout" reply with
          | Some (Json.List (_ :: _)) -> ()
          | _ -> Alcotest.fail "degraded reply still carries a valid layout"))

let test_open_validation () =
  let w = Lazy.force small_workload in
  let table = Workload.table w in
  with_daemon (fun port ->
      with_client port (fun c ->
          (match
             Client.open_session ~panel:[ "NoSuchAlgo" ] c ~session:"bad" table
           with
          | Error msg ->
              Alcotest.(check bool)
                "unknown panel is a clean error" true
                (contains msg "unknown panel algorithm")
          | Ok _ -> Alcotest.fail "unknown panel algorithm accepted");
          let stats = unwrap (Client.server_stats c) in
          Alcotest.(check (option int))
            "failed open leaks no session" (Some 0)
            (Protocol.int_field "sessions" stats);
          Alcotest.(check bool)
            "fresh open creates" true
            (unwrap (Client.open_session c ~session:"s" table)).Client.created;
          let reopened = unwrap (Client.open_session c ~session:"s" table) in
          Alcotest.(check bool) "re-open reattaches" false reopened.Client.created;
          Alcotest.(check bool)
            "re-open of a live session is not a restore" false
            reopened.Client.restored;
          let other =
            Table.make ~name:"other"
              ~attributes:[ Attribute.make "x" Attribute.Int32 ]
              ~row_count:10
          in
          (match Client.open_session c ~session:"s" other with
          | Error _ -> ()
          | Ok _ -> Alcotest.fail "session reopened with a different table");
          let _hist = unwrap (Client.close_session c ~session:"s") in
          let stats = unwrap (Client.server_stats c) in
          Alcotest.(check (option int))
            "close removes the session" (Some 0)
            (Protocol.int_field "sessions" stats)))

(* --- the determinism contract --- *)

let streams =
  lazy
    (List.init 4 (fun i ->
         Vp_benchmarks.Synthetic.drift_workload
           ~seed:(Int64.of_int (101 + i))
           ~attributes:8 ~clusters:3 ~rows:50_000 ~queries:80 ~scatter:0.05
           ~drift_at:0.5 ()))

let session_disk =
  Vp_cost.Disk.with_buffer_size Vp_cost.Disk.default (Vp_cost.Disk.mb 1.0)

let expected_histories =
  lazy
    (List.map
       (fun w ->
         let config =
           Vp_online.Service.default_config ~jobs:1 ~disk:session_disk
             ~panel:[ Vp_algorithms.Hillclimb.algorithm ]
             ()
         in
         (Vp_online.Replay.run ~config w).Vp_online.Replay.history)
       (Lazy.force streams))

let replay_over_wire ~server_jobs () =
  with_daemon ~jobs:server_jobs (fun port ->
      let worker i w () =
        with_client port (fun c ->
            let session = Printf.sprintf "s%d" i in
            let table = Workload.table w in
            let opened =
              unwrap (Client.open_session ~buffer_mb:1.0 c ~session table)
            in
            if not opened.Client.created then
              Alcotest.failf "session %s existed" session;
            Array.iter
              (fun q -> ignore (unwrap (Client.ingest c ~session table q)))
              (Workload.queries w);
            let hist = unwrap (Client.history c ~session) in
            let final = unwrap (Client.close_session c ~session) in
            Alcotest.(check string)
              "history and close agree" hist final;
            hist)
      in
      List.map Domain.join
        (List.mapi
           (fun i w -> Domain.spawn (worker i w))
           (Lazy.force streams)))

let check_wire_matches ~server_jobs () =
  let wire = replay_over_wire ~server_jobs () in
  List.iteri
    (fun i (expected, got) ->
      Alcotest.(check string)
        (Printf.sprintf "stream %d, --jobs %d: wire history = local replay" i
           server_jobs)
        expected got;
      Alcotest.(check bool)
        (Printf.sprintf "stream %d produced decisions" i)
        true
        (String.length got > 0))
    (List.combine (Lazy.force expected_histories) wire)

let test_concurrent_determinism () =
  check_wire_matches ~server_jobs:1 ();
  check_wire_matches ~server_jobs:4 ()

let test_concurrent_determinism_traced () =
  Vp_observe.Switch.with_level Vp_observe.Switch.Trace (fun () ->
      check_wire_matches ~server_jobs:4 ())

(* --- hostile input --- *)

let connect_raw = Testutil.connect_raw

let send_raw = Testutil.send_raw

let read_reply = Testutil.read_reply

let expect_error = Testutil.expect_error

let test_protocol_robustness () =
  with_daemon (fun port ->
      let fd = connect_raw port in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          expect_error fd "empty frame" "\n";
          expect_error fd "truncated JSON" "{\"op\": \"pi\n";
          expect_error fd "non-JSON garbage" "!!! not json at all\n";
          expect_error fd "non-object frame" "[1, 2, 3]\n";
          expect_error fd "unknown op" "{\"op\": \"make-coffee\"}\n";
          expect_error fd "missing op" "{\"session\": \"x\"}\n";
          expect_error fd "hostile nesting" (String.make 200 '[' ^ "\n");
          (* An oversized frame: the reply arrives while we are still
             allowed to finish the line; the connection must survive. *)
          send_raw fd (String.make (Protocol.max_frame_bytes + 4096) 'a');
          let reply = read_reply fd in
          Alcotest.(check string)
            "oversized frame answered with a clean error" "error"
            (Protocol.reply_status reply);
          send_raw fd "\n";
          (* The same connection still serves valid requests. *)
          send_raw fd (Json.to_string Protocol.ping ^ "\n");
          Alcotest.(check string)
            "connection survives the abuse" "ok"
            (Protocol.reply_status (read_reply fd)));
      (* Mid-request disconnect: half a frame, then close. *)
      let fd2 = connect_raw port in
      send_raw fd2 "{\"op\": \"part";
      Unix.close fd2;
      (* The daemon neither died nor corrupted other connections. *)
      with_client port (fun c ->
          Alcotest.(check int)
            "daemon alive after disconnects" Protocol.protocol_version
            (unwrap (Client.ping c));
          let stats = unwrap (Client.server_stats c) in
          Alcotest.(check (option int))
            "no leaked sessions" (Some 0)
            (Protocol.int_field "sessions" stats)))

let test_overload_shed () =
  with_daemon ~jobs:1 ~max_pending:1 (fun port ->
      (* One connection parks in a sleep, occupying the single slot. *)
      let sleeper =
        Domain.spawn (fun () ->
            with_client port (fun c ->
                Client.request c (Protocol.sleep ~ms:400)))
      in
      Unix.sleepf 0.1;
      with_client port (fun c ->
          (match Client.request c Protocol.ping with
          | Ok reply ->
              Alcotest.(check string)
                "second client is shed" "overloaded"
                (Protocol.reply_status reply);
              (match Protocol.retry_after_ms reply with
              | Some ms -> Alcotest.(check bool) "retry hint" true (ms > 0)
              | None -> Alcotest.fail "overloaded reply without retry_after_ms")
          | Error msg -> Alcotest.failf "shed reply lost: %s" msg);
          (* Retrying with backoff eventually gets through — the
             overloaded path degrades, it does not hang. *)
          match Client.request_retry ~attempts:50 c Protocol.ping with
          | Ok reply ->
              Alcotest.(check string)
                "retry succeeds once drained" "ok"
                (Protocol.reply_status reply)
          | Error msg -> Alcotest.failf "retry never got through: %s" msg);
      match Domain.join sleeper with
      | Ok reply ->
          Alcotest.(check string)
            "sleeper completed" "ok"
            (Protocol.reply_status reply)
      | Error msg -> Alcotest.failf "sleeper failed: %s" msg)

let test_shutdown_op () =
  let d = Vp_server.Daemon.create ~port:0 ~jobs:2 () in
  let server = Domain.spawn (fun () -> Vp_server.Daemon.serve d) in
  with_client (Vp_server.Daemon.port d) (fun c ->
      ignore (unwrap (Client.open_session c ~session:"s"
                        (Workload.table (Lazy.force small_workload))));
      unwrap (Client.shutdown_server c));
  (* serve returns on its own: the wire shutdown drained the daemon. *)
  Domain.join server;
  Alcotest.(check pass) "daemon drained after wire shutdown" () ()

(* --- vp client --script --- *)

let test_script_replay () =
  let script =
    "-- a tiny replayable workload\n\
     CREATE TABLE widgets (A INT, B INT, C DECIMAL, D VARCHAR(20)) ROWS \
     100000;\n\
     SELECT A, B FROM widgets;\n\
     SELECT C, D FROM widgets WEIGHT 2.0;\n\
     SELECT * FROM widgets;\n"
  in
  let path = Filename.temp_file "vp_script" ".sql" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let oc = open_out path in
      output_string oc script;
      close_out oc;
      with_daemon (fun port ->
          with_client port (fun c ->
              match Client.replay_script c path with
              | Error msg -> Alcotest.failf "replay failed: %s" msg
              | Ok [ (table, _hist) ] ->
                  Alcotest.(check string) "one session per table" "widgets"
                    table;
                  let stats = unwrap (Client.server_stats c) in
                  Alcotest.(check (option int))
                    "script sessions closed" (Some 0)
                    (Protocol.int_field "sessions" stats)
              | Ok entries ->
                  Alcotest.failf "expected 1 table, got %d"
                    (List.length entries))))

let test_script_parse_error () =
  let path = Filename.temp_file "vp_script" ".sql" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let oc = open_out path in
      output_string oc "CREATE TABLE t (A INT) ROWS 10;\nSELECT B FROM t;\n";
      close_out oc;
      (* No daemon needed: the script is rejected before any I/O. *)
      let c = Client.create ~port:1 () in
      match Client.replay_script c path with
      | Ok _ -> Alcotest.fail "bad script accepted"
      | Error msg ->
          Alcotest.(check bool)
            (Printf.sprintf "error is line-numbered: %s" msg)
            true (contains msg "line 2"))

let suite =
  [
    Alcotest.test_case "ping and stats" `Quick test_ping_stats;
    Alcotest.test_case "partition matches local exec" `Quick
      test_partition_matches_local;
    Alcotest.test_case "budget degrades to timed_out" `Quick
      test_budget_degrades;
    Alcotest.test_case "open validation and reattach" `Quick
      test_open_validation;
    Alcotest.test_case "concurrent sessions deterministic" `Quick
      test_concurrent_determinism;
    Alcotest.test_case "concurrent sessions deterministic (traced)" `Quick
      test_concurrent_determinism_traced;
    Alcotest.test_case "protocol robustness (fuzz)" `Quick
      test_protocol_robustness;
    Alcotest.test_case "overload sheds with retry-after" `Quick
      test_overload_shed;
    Alcotest.test_case "wire shutdown drains" `Quick test_shutdown_op;
    Alcotest.test_case "client --script replay" `Quick test_script_replay;
    Alcotest.test_case "client --script parse errors" `Quick
      test_script_parse_error;
  ]
