let contains haystack needle =
  let h = String.length haystack and n = String.length needle in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  n = 0 || go 0

let test_registry_ids_unique () =
  let ids = Vp_experiments.Registry.names in
  Alcotest.(check int) "no duplicates"
    (List.length ids)
    (List.length (List.sort_uniq compare ids))

let test_registry_find () =
  let e = Vp_experiments.Registry.find "FIG3" in
  Alcotest.(check string) "case insensitive" "fig3" e.Vp_experiments.Registry.id;
  Alcotest.(check bool) "find_opt unknown" true
    (Vp_experiments.Registry.find_opt "fig99" = None);
  match Vp_experiments.Registry.find "fig99" with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument msg ->
      List.iter
        (fun needle ->
          Alcotest.(check bool)
            (Printf.sprintf "error mentions %s" needle)
            true (contains msg needle))
        [ "fig99"; "valid experiments"; "table1"; "ablations" ]

let test_registry_covers_paper () =
  (* Every table (1-7) and figure (1-14) of the paper is present. *)
  let ids = Vp_experiments.Registry.names in
  List.iter
    (fun id ->
      Alcotest.(check bool) (id ^ " present") true (List.mem id ids))
    ([ "table1"; "table2"; "table3"; "table4"; "table5"; "table6"; "table7" ]
    @ List.init 14 (fun i -> Printf.sprintf "fig%d" (i + 1)))

let test_static_tables_render () =
  let t1 = Vp_experiments.Exp_classification.table1 () in
  List.iter
    (fun algo -> Alcotest.(check bool) algo true (contains t1 algo))
    [ "AutoPart"; "HillClimb"; "HYRISE"; "Navathe"; "O2P"; "Trojan"; "BruteForce" ];
  let t2 = Vp_experiments.Exp_classification.table2 () in
  Alcotest.(check bool) "unified row" true (contains t2 "Unified setting")

let test_common_algorithm_lineup () =
  let names =
    List.map
      (fun (a : Vp_core.Partitioner.t) -> a.Vp_core.Partitioner.name)
      (Vp_experiments.Common.algorithms Vp_experiments.Common.disk)
  in
  Alcotest.(check (list string))
    "figure order"
    [ "AutoPart"; "HillClimb"; "HYRISE"; "Navathe"; "O2P"; "Trojan"; "BruteForce" ]
    names

let test_tpch_runs_cached_and_complete () =
  let runs = Vp_experiments.Common.tpch_runs () in
  Alcotest.(check int) "9 algorithms (incl. baselines)" 9 (List.length runs);
  List.iter
    (fun (r : Vp_experiments.Common.algo_run) ->
      Alcotest.(check int)
        (r.algo.Vp_core.Partitioner.name ^ " covers 8 tables")
        8
        (List.length r.per_table);
      Alcotest.(check bool)
        (r.algo.Vp_core.Partitioner.name ^ " positive cost")
        true (r.total_cost > 0.0))
    runs;
  (* The cache must make the second call free-ish: physical equality. *)
  Alcotest.(check bool) "cached" true
    (Vp_experiments.Common.tpch_runs () == runs)

let test_paper_headline_results () =
  (* Lesson 1/3: HillClimb finds the BruteForce optimum. *)
  let hc = Vp_experiments.Common.find_run "HillClimb" in
  let bf = Vp_experiments.Common.find_run "BruteForce" in
  Alcotest.(check (Testutil.close ~eps:1e-6 ()))
    "HillClimb = optimal" bf.total_cost hc.total_cost;
  (* Lesson 4: improvement over column exists but is small (< 10%). *)
  let col = Vp_experiments.Common.find_run "Column" in
  let improvement = (col.total_cost -. hc.total_cost) /. col.total_cost in
  Alcotest.(check bool) "positive" true (improvement > 0.0);
  Alcotest.(check bool) "small" true (improvement < 0.10);
  (* Row is several times worse than everything else. *)
  let row = Vp_experiments.Common.find_run "Row" in
  Alcotest.(check bool) "row ~5x worse" true
    (row.total_cost > 3.0 *. col.total_cost);
  (* Navathe and O2P land between Column and Row (the "second class"). *)
  let navathe = Vp_experiments.Common.find_run "Navathe" in
  let o2p = Vp_experiments.Common.find_run "O2P" in
  List.iter
    (fun (r : Vp_experiments.Common.algo_run) ->
      Alcotest.(check bool)
        (r.algo.Vp_core.Partitioner.name ^ " worse than column")
        true
        (r.total_cost > col.total_cost);
      Alcotest.(check bool)
        (r.algo.Vp_core.Partitioner.name ^ " better than row")
        true
        (r.total_cost < row.total_cost))
    [ navathe; o2p ]

let suite =
  [
    Alcotest.test_case "registry ids unique" `Quick test_registry_ids_unique;
    Alcotest.test_case "registry find" `Quick test_registry_find;
    Alcotest.test_case "registry covers paper" `Quick test_registry_covers_paper;
    Alcotest.test_case "static tables render" `Quick test_static_tables_render;
    Alcotest.test_case "algorithm line-up" `Quick test_common_algorithm_lineup;
    Alcotest.test_case "tpch runs cached" `Slow test_tpch_runs_cached_and_complete;
    Alcotest.test_case "paper headline results" `Slow test_paper_headline_results;
  ]
