(* Durable sessions: the crash contract end to end.

   The acceptance test here is [crash recovery at every boundary]: for a
   50-query drifting script, abandoning a durable registry without
   drain at *every* journaled ingest boundary k (the on-disk state an
   instant after kill -9 — meta + write-ahead log, no snapshot, no
   goodbye) and re-running the script with seq against a fresh registry
   on the same directory must end with a decision history byte-identical
   to an uninterrupted in-memory run. The wire-level tests prove the
   same for the SIGTERM drain path through a real daemon at --jobs 1 and
   4, with an ingest in flight when the signal lands; the CI smoke job
   covers the genuine kill -9 of a separate process. *)

open Vp_core
module Service = Vp_online.Service
module Sessions = Vp_server.Sessions
module Protocol = Vp_server.Protocol
module Client = Vp_client.Client

let unwrap = Testutil.unwrap

let contains = Testutil.contains

(* The 50-query script: a drifting synthetic stream, so the reference
   run adopts at least one re-optimized layout and recovery has real
   generations and events to reconstruct, not just a counter. *)
let stream =
  lazy
    (Vp_benchmarks.Synthetic.drift_workload ~seed:91L ~rows:50_000
       ~attributes:8 ~clusters:3 ~queries:50 ~scatter:0.05 ~drift_at:0.5 ())

let table () = Workload.table (Lazy.force stream)
let queries () = Array.to_list (Workload.queries (Lazy.force stream))

let spec ?(session = "s") table =
  {
    Protocol.session;
    table;
    panel = [ "HillClimb" ];
    drift_ratio = 2.0;
    min_window = 8;
    epoch = 64;
    memory = 32;
    horizon = 1.0;
    budget_steps = None;
    buffer_mb = 1.0;
  }

let service_config () =
  let disk =
    Vp_cost.Disk.with_buffer_size Vp_cost.Disk.default (Vp_cost.Disk.mb 1.0)
  in
  Service.default_config ~drift_ratio:2.0 ~min_window:8 ~epoch:64 ~memory:32
    ~horizon:1.0 ~jobs:1 ~disk
    ~panel:[ Vp_algorithms.Hillclimb.algorithm ]
    ()

let with_temp_dir tag = Testutil.with_temp_dir ("durability-" ^ tag)

let ingest_seq reg ~session table i q =
  Sessions.ingest reg session ~seq:(i + 1)
    ~attributes:(Table.names_of_attr_set table (Query.references q))
    ~weight:(Query.weight q) ~name:(Query.name q) ()

let session_history reg name =
  unwrap (Sessions.view reg name Service.history)

let session_generation reg name =
  unwrap (Sessions.view reg name Service.generation)

(* The uninterrupted run every recovery is measured against: the whole
   script into one in-memory registry. *)
let reference =
  lazy
    (let t = table () in
     let reg = Sessions.create () in
     ignore (unwrap (Sessions.open_session reg (spec t)));
     List.iteri
       (fun i q -> ignore (unwrap (ingest_seq reg ~session:"s" t i q)))
       (queries ());
     let h = session_history reg "s" in
     let g = session_generation reg "s" in
     Alcotest.(check bool) "reference run adopts a layout" true (g > 0);
     (h, g))

(* --- Service snapshot / restore --- *)

let test_snapshot_restore_boundaries () =
  (* Restoring a snapshot taken after query k and ingesting the rest
     must match the long-lived service — at every k, including 0 (fresh
     service) and 50 (nothing left to ingest). *)
  let t = table () in
  let qs = Array.of_list (queries ()) in
  let n = Array.length qs in
  let reference = Service.create (service_config ()) t in
  Array.iter (Service.ingest reference) qs;
  let expect_history = Service.history reference in
  let expect_generation = Service.generation reference in
  let live = Service.create (service_config ()) t in
  for k = 0 to n do
    let snap = Service.snapshot live in
    let restored =
      match Service.restore (service_config ()) snap with
      | Ok s -> s
      | Error msg -> Alcotest.failf "restore at boundary %d: %s" k msg
    in
    Alcotest.(check int)
      (Printf.sprintf "boundary %d: ingest count restored" k)
      k (Service.ingested restored);
    Alcotest.(check string)
      (Printf.sprintf "boundary %d: snapshot round-trips" k)
      snap
      (Service.snapshot restored);
    for i = k to n - 1 do
      Service.ingest restored qs.(i)
    done;
    Alcotest.(check string)
      (Printf.sprintf "boundary %d: history byte-identical" k)
      expect_history (Service.history restored);
    Alcotest.(check int)
      (Printf.sprintf "boundary %d: generation" k)
      expect_generation
      (Service.generation restored);
    if k < n then Service.ingest live qs.(k)
  done

let test_restore_rejects_corruption () =
  let t = table () in
  let svc = Service.create (service_config ()) t in
  List.iteri (fun i q -> if i < 10 then Service.ingest svc q) (queries ());
  let snap = Service.snapshot svc in
  (match Service.restore (service_config ()) "not json at all" with
  | Ok _ -> Alcotest.fail "garbage restored"
  | Error _ -> ());
  (match
     Service.restore (service_config ())
       (String.sub snap 0 (String.length snap / 2))
   with
  | Ok _ -> Alcotest.fail "truncated snapshot restored"
  | Error _ -> ());
  (* A config whose drift window disagrees with the snapshot's ring is
     a mis-wiring, not a recovery: it must be refused, not glossed. *)
  let other =
    let disk =
      Vp_cost.Disk.with_buffer_size Vp_cost.Disk.default (Vp_cost.Disk.mb 1.0)
    in
    Service.default_config ~drift_ratio:2.0 ~min_window:16 ~epoch:64
      ~memory:32 ~horizon:1.0 ~jobs:1 ~disk
      ~panel:[ Vp_algorithms.Hillclimb.algorithm ]
      ()
  in
  match Service.restore other snap with
  | Ok _ -> Alcotest.fail "min_window mismatch restored"
  | Error _ -> ()

(* --- client retry jitter --- *)

let test_retry_jitter_bounds () =
  (* The jittered backoff must stay in [hint/2, hint) — never zero
     (a stampede), never past the server's hint — and be a pure
     function of (seed, index). *)
  let hint = 100 in
  let draws =
    List.init 200 (fun index ->
        Client.retry_delay_ms ~seed:42L ~index ~retry_after_ms:hint)
  in
  List.iteri
    (fun index d ->
      Alcotest.(check bool)
        (Printf.sprintf "draw %d in [50, 100)" index)
        true
        (d >= 50.0 && d < 100.0))
    draws;
  let again =
    List.init 200 (fun index ->
        Client.retry_delay_ms ~seed:42L ~index ~retry_after_ms:hint)
  in
  Alcotest.(check (list (float 0.))) "same seed, same schedule" draws again;
  (* The draws actually spread across the band (not a constant), and
     two clients with different seeds do not reconnect in lockstep. *)
  let lo = List.fold_left min infinity draws in
  let hi = List.fold_left max neg_infinity draws in
  Alcotest.(check bool)
    (Printf.sprintf "draws spread the band [%.1f, %.1f]" lo hi)
    true
    (lo < 62.5 && hi > 87.5);
  let other =
    List.init 200 (fun index ->
        Client.retry_delay_ms ~seed:43L ~index ~retry_after_ms:hint)
  in
  Alcotest.(check bool) "different seed, different jitter" true
    (draws <> other)

(* --- seq idempotency --- *)

let test_seq_idempotency () =
  with_temp_dir "seq" (fun dir ->
      let t = table () in
      let qs = Array.of_list (queries ()) in
      let reg = Sessions.create ~data_dir:dir () in
      ignore (unwrap (Sessions.open_session reg (spec t)));
      for i = 0 to 2 do
        let r = unwrap (ingest_seq reg ~session:"s" t i qs.(i)) in
        Alcotest.(check bool)
          (Printf.sprintf "seq %d applies" (i + 1))
          false r.Sessions.duplicate;
        Alcotest.(check int)
          (Printf.sprintf "seq %d position" (i + 1))
          (i + 1) r.Sessions.ingested
      done;
      (* A resent position is acknowledged, not re-ingested. *)
      let dup = unwrap (ingest_seq reg ~session:"s" t 1 qs.(1)) in
      Alcotest.(check bool) "replayed seq is a duplicate" true
        dup.Sessions.duplicate;
      Alcotest.(check int) "stream did not advance" 3 dup.Sessions.ingested;
      (* A gap means the client lost a query — an error, never a silent
         hole in the journal. *)
      (match ingest_seq reg ~session:"s" t 4 qs.(4) with
      | Ok _ -> Alcotest.fail "seq gap accepted"
      | Error msg ->
          Alcotest.(check bool) "gap error names the expected seq" true
            (contains msg "next is 4"));
      (* No seq: the pre-idempotency client still works. *)
      let r =
        unwrap
          (Sessions.ingest reg "s"
             ~attributes:
               (Table.names_of_attr_set t (Query.references qs.(3)))
             ~weight:(Query.weight qs.(3))
             ~name:(Query.name qs.(3))
             ())
      in
      Alcotest.(check int) "unnumbered ingest appends" 4 r.Sessions.ingested)

(* --- the differential crash-recovery suite --- *)

let test_crash_recovery_every_boundary () =
  let t = table () in
  let qs = queries () in
  let n = List.length qs in
  let expect_history, expect_generation = Lazy.force reference in
  with_temp_dir "crash" (fun root ->
      for k = 0 to n do
        let dir = Filename.concat root (string_of_int k) in
        (* Live until the crash point: open + first k journaled ingests,
           then the process "dies" — the registry is abandoned with no
           drain and no spill, leaving exactly what kill -9 leaves: the
           meta file and a WAL of k records. *)
        let doomed = Sessions.create ~data_dir:dir () in
        ignore (unwrap (Sessions.open_session doomed (spec t)));
        List.iteri
          (fun i q ->
            if i < k then ignore (unwrap (ingest_seq doomed ~session:"s" t i q)))
          qs;
        (* Next life: the startup scan finds the session, the first open
           re-attaches to it, and a seq replay of the whole script acks
           the already-journaled prefix and applies the rest. *)
        let reg = Sessions.create ~data_dir:dir () in
        Alcotest.(check int)
          (Printf.sprintf "boundary %d: startup scan finds the session" k)
          1
          (Sessions.recovered_count reg);
        let opened = unwrap (Sessions.open_session reg (spec t)) in
        Alcotest.(check bool)
          (Printf.sprintf "boundary %d: open restores" k)
          true opened.Sessions.restored;
        Alcotest.(check bool)
          (Printf.sprintf "boundary %d: open does not create" k)
          false opened.Sessions.created;
        List.iteri
          (fun i q ->
            let r = unwrap (ingest_seq reg ~session:"s" t i q) in
            Alcotest.(check bool)
              (Printf.sprintf "boundary %d: seq %d %s" k (i + 1)
                 (if i < k then "acks as duplicate" else "applies"))
              (i < k) r.Sessions.duplicate)
          qs;
        Alcotest.(check string)
          (Printf.sprintf "boundary %d: history byte-identical" k)
          expect_history (session_history reg "s");
        Alcotest.(check int)
          (Printf.sprintf "boundary %d: generation" k)
          expect_generation (session_generation reg "s")
      done)

(* --- eviction / re-attach under a resident cap --- *)

let test_evict_reattach_identity () =
  (* Four sessions fed the same stream round-robin under a two-resident
     cap: every query lands on an evicted session that must be restored
     mid-stream, and each history must still match the uncapped
     in-memory run's. *)
  let t = table () in
  let qs = queries () in
  let expect_history, expect_generation = Lazy.force reference in
  let names = [ "s0"; "s1"; "s2"; "s3" ] in
  with_temp_dir "evict" (fun dir ->
      let reg = Sessions.create ~data_dir:dir ~max_resident:2 () in
      List.iter
        (fun s -> ignore (unwrap (Sessions.open_session reg (spec ~session:s t))))
        names;
      List.iteri
        (fun i q ->
          List.iter
            (fun s -> ignore (unwrap (ingest_seq reg ~session:s t i q)))
            names)
        qs;
      Alcotest.(check int) "all four registered" 4 (Sessions.count reg);
      Alcotest.(check bool) "cap held" true (Sessions.resident_count reg <= 2);
      List.iter
        (fun s ->
          Alcotest.(check string)
            (s ^ ": history matches the uncapped run")
            expect_history (session_history reg s);
          Alcotest.(check int)
            (s ^ ": generation")
            expect_generation (session_generation reg s))
        names)

(* --- drain and re-attach over the wire (SIGTERM path) --- *)

let await ?(timeout = 10.0) what cond =
  let deadline = Unix.gettimeofday () +. timeout in
  let rec go () =
    if cond () then ()
    else if Unix.gettimeofday () > deadline then
      Alcotest.failf "timed out waiting for %s" what
    else (
      Unix.sleepf 0.002;
      go ())
  in
  go ()

let test_sigterm_drain jobs () =
  (* A real daemon with a data_dir: SIGTERM lands while a feeder client
     has ingests in flight. The drain must let the in-flight request
     finish, spill every session, and a daemon restarted on the same
     directory must re-attach (restored:true over the wire) with the
     history intact — completed by a seq replay of the whole script that
     acks everything the first life applied. *)
  with_temp_dir
    (Printf.sprintf "drain-j%d" jobs)
    (fun dir ->
      let t = table () in
      let qs = Array.of_list (queries ()) in
      let n = Array.length qs in
      let expect_history, _ = Lazy.force reference in
      let d = Vp_server.Daemon.create ~port:0 ~jobs ~data_dir:dir () in
      Vp_server.Daemon.install_signal_handlers d;
      let server = Domain.spawn (fun () -> Vp_server.Daemon.serve d) in
      let port = Vp_server.Daemon.port d in
      let c = Client.create ~port () in
      let opened =
        unwrap
          (Client.open_session ~panel:[ "HillClimb" ] ~buffer_mb:1.0 c
             ~session:"s" t)
      in
      Alcotest.(check bool) "first open creates" true opened.Client.created;
      Alcotest.(check bool) "nothing to restore yet" false
        opened.Client.restored;
      for i = 0 to 9 do
        ignore (unwrap (Client.ingest ~seq:(i + 1) c ~session:"s" t qs.(i)))
      done;
      (* Release the connection (at --jobs 1 a connection owns the only
         worker for its lifetime) and keep feeding from another domain
         so requests are in flight when the signal lands. *)
      Client.close c;
      let applied = Atomic.make 10 in
      let feeder =
        Domain.spawn (fun () ->
            let c2 = Client.create ~port () in
            let rec go i =
              if i < n then
                match Client.ingest ~seq:(i + 1) c2 ~session:"s" t qs.(i) with
                | Ok _ ->
                    Atomic.set applied (i + 1);
                    go (i + 1)
                | Error _ -> ()
            in
            go 10;
            Client.close c2)
      in
      await "the feeder to get in flight" (fun () -> Atomic.get applied >= 12);
      Unix.kill (Unix.getpid ()) Sys.sigterm;
      Domain.join feeder;
      Domain.join server;
      Sys.set_signal Sys.sigterm Sys.Signal_default;
      Sys.set_signal Sys.sigint Sys.Signal_default;
      let reached = Atomic.get applied in
      Alcotest.(check bool)
        (Printf.sprintf "feeder was mid-stream (reached %d)" reached)
        true
        (reached >= 12 && reached <= n);
      (* Second life. *)
      let d2 = Vp_server.Daemon.create ~port:0 ~jobs ~data_dir:dir () in
      let server2 = Domain.spawn (fun () -> Vp_server.Daemon.serve d2) in
      Fun.protect
        ~finally:(fun () ->
          Vp_server.Daemon.stop d2;
          Domain.join server2)
        (fun () ->
          let c3 = Client.create ~port:(Vp_server.Daemon.port d2) () in
          Fun.protect
            ~finally:(fun () -> Client.close c3)
            (fun () ->
              let reopened =
                unwrap
                  (Client.open_session ~panel:[ "HillClimb" ] ~buffer_mb:1.0
                     c3 ~session:"s" t)
              in
              Alcotest.(check bool) "reopen does not create" false
                reopened.Client.created;
              Alcotest.(check bool) "reopen restores from disk" true
                reopened.Client.restored;
              for i = 0 to n - 1 do
                ignore
                  (unwrap (Client.ingest ~seq:(i + 1) c3 ~session:"s" t qs.(i)))
              done;
              Alcotest.(check string) "history survives the restart"
                expect_history
                (unwrap (Client.history c3 ~session:"s")))))

let suite =
  [
    Alcotest.test_case "snapshot/restore at every boundary" `Quick
      test_snapshot_restore_boundaries;
    Alcotest.test_case "restore rejects corruption" `Quick
      test_restore_rejects_corruption;
    Alcotest.test_case "retry jitter bounds" `Quick test_retry_jitter_bounds;
    Alcotest.test_case "seq idempotency" `Quick test_seq_idempotency;
    Alcotest.test_case "crash recovery at every boundary" `Quick
      test_crash_recovery_every_boundary;
    Alcotest.test_case "evict/re-attach identity" `Quick
      test_evict_reattach_identity;
    Alcotest.test_case "SIGTERM drain, jobs 1" `Quick (test_sigterm_drain 1);
    Alcotest.test_case "SIGTERM drain, jobs 4" `Quick (test_sigterm_drain 4);
  ]
