(* vp_parallel: the work pool, Once, the cost cache, and the runner. *)

open Vp_core

let disk = Vp_cost.Disk.default

(* --- Pool --- *)

let test_pool_ordering () =
  let inputs = List.init 25 Fun.id in
  List.iter
    (fun jobs ->
      let got =
        Vp_parallel.Pool.run_list ~jobs
          (List.map
             (fun i () ->
               (* Uneven work so completion order differs from submission
                  order when domains are available. *)
               let n = ref 0 in
               for _ = 1 to (25 - i) * 1000 do
                 incr n
               done;
               i * i)
             inputs)
      in
      Alcotest.(check (list int))
        (Printf.sprintf "submission order, jobs=%d" jobs)
        (List.map (fun i -> i * i) inputs)
        got)
    [ 1; 2; 4 ]

let test_pool_empty_and_map () =
  Alcotest.(check (list int)) "empty" [] (Vp_parallel.Pool.run_list ~jobs:4 []);
  Vp_parallel.Pool.with_pool ~jobs:3 (fun pool ->
      Alcotest.(check (list string))
        "map"
        [ "0"; "1"; "2"; "3" ]
        (Vp_parallel.Pool.map pool string_of_int [ 0; 1; 2; 3 ]);
      (* The pool is reusable across batches. *)
      Alcotest.(check (list int))
        "second batch" [ 10; 20 ]
        (Vp_parallel.Pool.map pool (fun x -> x * 10) [ 1; 2 ]))

let test_pool_exception () =
  List.iter
    (fun jobs ->
      Alcotest.check_raises
        (Printf.sprintf "earliest failure wins, jobs=%d" jobs)
        (Failure "boom2")
        (fun () ->
          ignore
            (Vp_parallel.Pool.run_list ~jobs
               (List.init 6 (fun i () ->
                    if i >= 2 then failwith (Printf.sprintf "boom%d" i)
                    else i)))))
    [ 1; 4 ]

let test_pool_jobs_accounting () =
  Alcotest.(check bool) "effective_jobs >= 1" true
    (Vp_parallel.Pool.effective_jobs ~jobs:4 >= 1);
  Alcotest.(check bool) "effective_jobs <= jobs" true
    (Vp_parallel.Pool.effective_jobs ~jobs:4 <= 4);
  Alcotest.(check int) "jobs=1 is one domain" 1
    (Vp_parallel.Pool.effective_jobs ~jobs:1);
  Vp_parallel.Pool.with_pool ~jobs:4 (fun pool ->
      Alcotest.(check int) "requested jobs" 4 (Vp_parallel.Pool.jobs pool);
      Alcotest.(check int) "domain count"
        (Vp_parallel.Pool.effective_jobs ~jobs:4)
        (Vp_parallel.Pool.domain_count pool))

let test_default_jobs_env () =
  let old = Sys.getenv_opt "VP_JOBS" in
  Fun.protect
    ~finally:(fun () ->
      Unix.putenv "VP_JOBS" (Option.value old ~default:""))
    (fun () ->
      Unix.putenv "VP_JOBS" "3";
      Alcotest.(check int) "VP_JOBS wins" 3 (Vp_parallel.Pool.default_jobs ());
      Unix.putenv "VP_JOBS" "not-a-number";
      Alcotest.(check int) "garbage falls back"
        (Domain.recommended_domain_count ())
        (Vp_parallel.Pool.default_jobs ()))

let test_run_results () =
  List.iter
    (fun jobs ->
      Vp_parallel.Pool.with_pool ~jobs (fun pool ->
          let outcomes =
            Vp_parallel.Pool.run_results pool
              (List.init 8 (fun i ->
                   ( Printf.sprintf "t%d" i,
                     fun () ->
                       if i mod 3 = 1 then failwith (Printf.sprintf "boom%d" i)
                       else i * 7 )))
          in
          Alcotest.(check int)
            (Printf.sprintf "one result per task, jobs=%d" jobs)
            8 (List.length outcomes);
          List.iteri
            (fun i outcome ->
              match outcome with
              | Ok v ->
                  Alcotest.(check bool) "success slot" true (i mod 3 <> 1);
                  Alcotest.(check int) "value in order" (i * 7) v
              | Error (e : Vp_parallel.Pool.error) ->
                  (* Failures carry their label and exception; the other
                     tasks still ran. *)
                  Alcotest.(check bool) "failure slot" true (i mod 3 = 1);
                  Alcotest.(check string) "label" (Printf.sprintf "t%d" i)
                    e.label;
                  Alcotest.(check bool) "exception kept" true
                    (e.exn = Failure (Printf.sprintf "boom%d" i)))
            outcomes))
    [ 1; 4 ]

let test_with_pool_survives_worker_death () =
  (* A worker domain dying mid-batch must neither hang the pool nor leak
     the surviving domains: the batch completes (drained by the caller and
     the remaining workers), and shutdown joins every domain before
     re-raising the dead worker's exception. *)
  match
    Vp_parallel.Pool.with_pool ~jobs:4 (fun pool ->
        if Vp_parallel.Pool.domain_count pool < 2 then `Single_core
        else begin
          Vp_parallel.Pool.inject_raw pool (fun () -> failwith "worker down");
          (* Give a blocked worker time to pick the poisoned task up. *)
          Unix.sleepf 0.05;
          let got =
            Vp_parallel.Pool.run pool
              (List.init 16 (fun i () ->
                   ignore (Sys.opaque_identity (i * i));
                   i))
          in
          Alcotest.(check (list int))
            "batch completes despite a dead worker" (List.init 16 Fun.id) got;
          `Ran
        end)
  with
  | `Single_core -> ()
  | `Ran -> Alcotest.fail "expected shutdown to re-raise the worker's death"
  | exception Failure m ->
      Alcotest.(check string) "worker's exception surfaces" "worker down" m

(* --- Once --- *)

let test_once () =
  let evals = ref 0 in
  let o =
    Vp_parallel.Once.create (fun () ->
        incr evals;
        !evals * 100)
  in
  Alcotest.(check int) "first get" 100 (Vp_parallel.Once.get o);
  Alcotest.(check int) "memoized" 100 (Vp_parallel.Once.get o);
  Alcotest.(check int) "one evaluation" 1 !evals;
  Vp_parallel.Once.reset o;
  Alcotest.(check int) "recomputed after reset" 200 (Vp_parallel.Once.get o);
  Alcotest.(check int) "two evaluations" 2 !evals

let test_once_exception_retries () =
  let attempts = ref 0 in
  let o =
    Vp_parallel.Once.create (fun () ->
        incr attempts;
        if !attempts = 1 then failwith "flaky" else !attempts)
  in
  Alcotest.check_raises "first get raises" (Failure "flaky") (fun () ->
      ignore (Vp_parallel.Once.get o));
  Alcotest.(check int) "retry succeeds" 2 (Vp_parallel.Once.get o)

(* --- Cost_cache --- *)

let some_partitionings n =
  let state = Random.State.make [| 42 |] in
  Partitioning.row n :: Partitioning.column n
  :: List.init 10 (fun _ ->
         Enumeration.random_partitioning (Random.State.int state) n)

let test_cache_matches_io_model () =
  let w = Testutil.partsupp_workload in
  let n = Table.attribute_count (Workload.table w) in
  let cache = Vp_parallel.Cost_cache.create () in
  let cached = Vp_parallel.Cost_cache.oracle ~cache disk w in
  let qcache = Vp_parallel.Cost_cache.create () in
  let qcached = Vp_parallel.Cost_cache.query_oracle ~cache:qcache disk w in
  (* Two passes: the second one is served from the cache and must return
     bit-identical floats. *)
  for pass = 1 to 2 do
    List.iter
      (fun p ->
        let expect = Vp_cost.Io_model.workload_cost disk w p in
        Alcotest.(check (float 0.))
          (Printf.sprintf "whole-partitioning cache, pass %d" pass)
          expect (cached p);
        Alcotest.(check (float 0.))
          (Printf.sprintf "query-grained cache, pass %d" pass)
          expect (qcached p))
      (some_partitionings n)
  done;
  let s = Vp_parallel.Cost_cache.stats cache in
  Alcotest.(check bool) "whole-partitioning cache hits" true
    (s.Vp_parallel.Cost_cache.hits > 0);
  Alcotest.(check bool) "query cache hits" true
    (Vp_parallel.Cost_cache.hit_rate qcache > 0.0)

let test_cache_stats_and_clear () =
  let w = Testutil.partsupp_workload in
  let cache = Vp_parallel.Cost_cache.create () in
  let cached = Vp_parallel.Cost_cache.oracle ~cache disk w in
  let p = Partitioning.column 5 in
  ignore (cached p);
  ignore (cached p);
  let s = Vp_parallel.Cost_cache.stats cache in
  Alcotest.(check int) "one miss" 1 s.Vp_parallel.Cost_cache.misses;
  Alcotest.(check int) "one hit" 1 s.Vp_parallel.Cost_cache.hits;
  Alcotest.(check int) "one entry" 1 s.Vp_parallel.Cost_cache.entries;
  Alcotest.(check (float 1e-9)) "hit rate" 0.5
    (Vp_parallel.Cost_cache.hit_rate cache);
  Vp_parallel.Cost_cache.clear cache;
  let s = Vp_parallel.Cost_cache.stats cache in
  Alcotest.(check int) "cleared entries" 0 s.Vp_parallel.Cost_cache.entries;
  Alcotest.(check int) "cleared hits" 0 s.Vp_parallel.Cost_cache.hits

let test_cache_kill_switch () =
  let w = Testutil.partsupp_workload in
  let cache = Vp_parallel.Cost_cache.create () in
  let cached = Vp_parallel.Cost_cache.oracle ~cache disk w in
  let p = Partitioning.row 5 in
  Fun.protect
    ~finally:(fun () -> Vp_parallel.Cost_cache.set_caching_enabled true)
    (fun () ->
      Vp_parallel.Cost_cache.set_caching_enabled false;
      Alcotest.(check bool) "reports disabled" false
        (Vp_parallel.Cost_cache.caching_enabled ());
      Alcotest.(check (float 0.)) "pass-through value"
        (Vp_cost.Io_model.workload_cost disk w p)
        (cached p);
      let s = Vp_parallel.Cost_cache.stats cache in
      Alcotest.(check int) "no lookups recorded" 0
        (s.Vp_parallel.Cost_cache.hits + s.Vp_parallel.Cost_cache.misses))

let test_fingerprint_sensitivity () =
  let w = Testutil.partsupp_workload in
  let fp = Vp_parallel.Cost_cache.fingerprint disk w in
  Alcotest.(check string) "deterministic" fp
    (Vp_parallel.Cost_cache.fingerprint disk w);
  let bigger_buffer =
    Vp_cost.Disk.with_buffer_size disk (2 * disk.Vp_cost.Disk.buffer_size)
  in
  Alcotest.(check bool) "disk profile changes it" true
    (fp <> Vp_parallel.Cost_cache.fingerprint bigger_buffer w);
  let reweighted =
    Workload.make (Workload.table w)
      [
        Query.make ~name:"Q1" ~weight:2.0
          ~references:(Query.references Testutil.partsupp_q1)
          ();
        Testutil.partsupp_q2;
      ]
  in
  Alcotest.(check bool) "query weight changes it" true
    (fp <> Vp_parallel.Cost_cache.fingerprint disk reweighted)

let test_counted_cache () =
  let w = Testutil.partsupp_workload in
  let oracle = Partitioner.Counted.make (Vp_cost.Io_model.oracle disk w) in
  let cache = Vp_parallel.Cost_cache.create () in
  let cost_of = Vp_parallel.Cost_cache.counted cache ~fingerprint:"t" oracle in
  let p = Partitioning.column 5 in
  let first = cost_of p in
  Alcotest.(check int) "miss counts a call" 1 (Partitioner.Counted.calls oracle);
  Alcotest.(check (float 0.)) "hit returns the same float" first (cost_of p);
  Alcotest.(check int) "hit does not call" 1 (Partitioner.Counted.calls oracle);
  Alcotest.(check int) "hit notes a candidate" 2
    (Partitioner.Counted.candidates oracle)

(* --- Runner --- *)

let test_runner_ordering () =
  let tasks =
    List.init 8 (fun i ->
        Vp_parallel.Runner.task
          ~label:(Printf.sprintf "t%d" i)
          (fun () -> i * 7))
  in
  List.iter
    (fun jobs ->
      let outcomes = Vp_parallel.Runner.run ~jobs tasks in
      Alcotest.(check (list (pair string int)))
        (Printf.sprintf "labelled results in order, jobs=%d" jobs)
        (List.init 8 (fun i -> (Printf.sprintf "t%d" i, i * 7)))
        (Vp_parallel.Runner.values outcomes);
      List.iter
        (fun (o : int Vp_parallel.Runner.outcome) ->
          Alcotest.(check bool) "non-negative elapsed" true
            (o.elapsed_seconds >= 0.0))
        outcomes)
    [ 1; 4 ]

let suite =
  [
    Alcotest.test_case "pool ordering" `Quick test_pool_ordering;
    Alcotest.test_case "pool empty + map" `Quick test_pool_empty_and_map;
    Alcotest.test_case "pool exceptions" `Quick test_pool_exception;
    Alcotest.test_case "pool jobs accounting" `Quick test_pool_jobs_accounting;
    Alcotest.test_case "default jobs env" `Quick test_default_jobs_env;
    Alcotest.test_case "run_results totality" `Quick test_run_results;
    Alcotest.test_case "with_pool survives worker death" `Quick
      test_with_pool_survives_worker_death;
    Alcotest.test_case "once" `Quick test_once;
    Alcotest.test_case "once exception retries" `Quick test_once_exception_retries;
    Alcotest.test_case "cache matches io model" `Quick test_cache_matches_io_model;
    Alcotest.test_case "cache stats + clear" `Quick test_cache_stats_and_clear;
    Alcotest.test_case "cache kill switch" `Quick test_cache_kill_switch;
    Alcotest.test_case "fingerprint sensitivity" `Quick test_fingerprint_sensitivity;
    Alcotest.test_case "counted cache" `Quick test_counted_cache;
    Alcotest.test_case "runner ordering" `Quick test_runner_ordering;
  ]
