open Vp_core

let parse_ok script =
  match Vp_parser.Workload_parser.parse script with
  | Ok ws -> ws
  | Error e ->
      Alcotest.failf "unexpected parse error: %a"
        Vp_parser.Workload_parser.pp_error e

let parse_err script =
  match Vp_parser.Workload_parser.parse script with
  | Ok _ -> Alcotest.fail "expected a parse error"
  | Error e -> e

let partsupp_script =
  {|
-- the paper's example
CREATE TABLE partsupp (
  PartKey INT, SuppKey INT, AvailQty INT,
  SupplyCost DECIMAL, Comment VARCHAR(199)
) ROWS 8000000;

SELECT PartKey, SuppKey, AvailQty, SupplyCost FROM partsupp;
SELECT AvailQty, SupplyCost, Comment FROM partsupp WEIGHT 2.5;
|}

let test_basic_script () =
  match parse_ok partsupp_script with
  | [ w ] ->
      let t = Workload.table w in
      Alcotest.(check string) "table name" "partsupp" (Table.name t);
      Alcotest.(check int) "5 columns" 5 (Table.attribute_count t);
      Alcotest.(check int) "rows" 8_000_000 (Table.row_count t);
      Alcotest.(check int) "2 queries" 2 (Workload.query_count w);
      Alcotest.(check Testutil.attr_set)
        "q1 footprint"
        (Attr_set.of_list [ 0; 1; 2; 3 ])
        (Query.references (Workload.query w 0));
      Alcotest.(check (float 0.0)) "weight" 2.5 (Query.weight (Workload.query w 1))
  | ws -> Alcotest.failf "expected 1 workload, got %d" (List.length ws)

let test_column_widths () =
  match parse_ok "CREATE TABLE t (a CHAR(25), b VARCHAR(40), c DATE) ROWS 10;" with
  | [ w ] ->
      let t = Workload.table w in
      Alcotest.(check int) "char width" 25 (Table.width t 0);
      Alcotest.(check int) "varchar width" 40 (Table.width t 1);
      Alcotest.(check int) "date width" 4 (Table.width t 2)
  | _ -> Alcotest.fail "expected one workload"

let test_select_star () =
  let script =
    "CREATE TABLE t (a INT, b INT, c INT);\nSELECT * FROM t;"
  in
  match parse_ok script with
  | [ w ] ->
      Alcotest.(check Testutil.attr_set)
        "all columns" (Attr_set.full 3)
        (Query.references (Workload.query w 0))
  | _ -> Alcotest.fail "expected one workload"

let test_where_adds_references () =
  let script =
    "CREATE TABLE t (a INT, b INT, c INT);\n\
     SELECT a FROM t WHERE b > 5 AND c = 'x';"
  in
  match parse_ok script with
  | [ w ] ->
      Alcotest.(check Testutil.attr_set)
        "select + where footprint" (Attr_set.full 3)
        (Query.references (Workload.query w 0))
  | _ -> Alcotest.fail "expected one workload"

let test_group_order_by () =
  let script =
    "CREATE TABLE t (a INT, b INT, c INT, d INT);\n\
     SELECT a FROM t GROUP BY b ORDER BY c;"
  in
  match parse_ok script with
  | [ w ] ->
      Alcotest.(check Testutil.attr_set)
        "group/order referenced"
        (Attr_set.of_list [ 0; 1; 2 ])
        (Query.references (Workload.query w 0))
  | _ -> Alcotest.fail "expected one workload"

let test_multiple_tables () =
  let script =
    "CREATE TABLE t (a INT);\nCREATE TABLE u (x INT, y INT);\n\
     SELECT x FROM u;\nSELECT a FROM t;\nSELECT y FROM u;"
  in
  match parse_ok script with
  | [ wt; wu ] ->
      Alcotest.(check int) "t queries" 1 (Workload.query_count wt);
      Alcotest.(check int) "u queries" 2 (Workload.query_count wu)
  | ws -> Alcotest.failf "expected 2 workloads, got %d" (List.length ws)

let test_default_rows () =
  match parse_ok "CREATE TABLE t (a INT);" with
  | [ w ] ->
      Alcotest.(check int) "default row count" 1_000_000
        (Table.row_count (Workload.table w))
  | _ -> Alcotest.fail "expected one workload"

let test_errors () =
  let e = parse_err "SELECT a FROM nowhere;" in
  Alcotest.(check int) "line" 1 e.line;
  let e2 =
    parse_err "CREATE TABLE t (a INT);\nSELECT nope FROM t;"
  in
  Alcotest.(check bool) "mentions column" true
    (String.length e2.message > 0);
  let e3 = parse_err "CREATE TABLE t (a BLOB);" in
  Alcotest.(check int) "type error line" 1 e3.line;
  let e4 = parse_err "CREATE TABLE t (a CHAR);" in
  Alcotest.(check bool) "char needs width" true
    (String.length e4.message > 0);
  let e5 = parse_err "CREATE TABLE t (a INT);\nCREATE TABLE t (b INT);" in
  Alcotest.(check int) "duplicate table line" 2 e5.line

(* Malformed input must come back as a described error — right line,
   offending token attached — never as an escaped exception. *)
let test_malformed_inputs () =
  let contains needle hay =
    let h = String.length hay and n = String.length needle in
    let rec go k = k + n <= h && (String.sub hay k n = needle || go (k + 1)) in
    n = 0 || go 0
  in
  let check name script ~line ?token ?mentions () =
    let e = parse_err script in
    Alcotest.(check int) (name ^ ": line") line e.line;
    (match token with
    | Some t -> Alcotest.(check (option string)) (name ^ ": token") (Some t) e.token
    | None -> ());
    match mentions with
    | Some needle ->
        Alcotest.(check bool)
          (Printf.sprintf "%s: message %S mentions %S" name e.message needle)
          true (contains needle e.message)
    | None -> ()
  in
  (* Attribute.make rejects a zero width; the parser must turn that into
     an error at the column, not crash. *)
  check "char zero width" "CREATE TABLE t (a CHAR(0));" ~line:1 ~token:"a" ();
  check "varchar zero width" "CREATE TABLE t (\n  a INT,\n  b VARCHAR(0)\n);"
    ~line:3 ~token:"b" ();
  check "unterminated string"
    "CREATE TABLE t (a INT);\nSELECT a FROM t WHERE a = 'oops;" ~line:2
    ~mentions:"unterminated" ();
  check "unexpected character" "CREATE TABLE t (a INT);\nSELECT a FROM t @ x;"
    ~line:2 ~mentions:"unexpected character" ();
  check "eof mid-statement" "CREATE TABLE t (a INT" ~line:1
    ~mentions:"end of input" ();
  check "eof line tracking" "CREATE TABLE t (a INT);\n\nSELECT a" ~line:3
    ~mentions:"end of input" ();
  check "zero weight" "CREATE TABLE t (a INT);\nSELECT a FROM t WEIGHT 0;"
    ~line:2 ~token:"0" ~mentions:"WEIGHT" ();
  check "weight not a number" "CREATE TABLE t (a INT);\nSELECT a FROM t WEIGHT x;"
    ~line:2 ~mentions:"number" ();
  check "unknown column" "CREATE TABLE t (a INT);\nSELECT nope FROM t;" ~line:2
    ~token:"nope" ~mentions:"nope" ();
  check "unknown table" "SELECT a FROM nowhere;" ~line:1 ~token:"nowhere"
    ~mentions:"nowhere" ();
  check "unknown type" "CREATE TABLE t (a BLOB);" ~line:1 ~token:"BLOB"
    ~mentions:"BLOB" ();
  check "statement soup" "CREATE TABLE t (a INT);\nDROP TABLE t;" ~line:2
    ~token:"DROP" ~mentions:"DROP" ();
  check "bad column separator" "CREATE TABLE t (a INT b INT);" ~line:1
    ~token:"b" ~mentions:"column list" ();
  (* "FROM" lexes as the first select item, so the error is the missing
     FROM keyword afterwards. *)
  check "empty select list" "CREATE TABLE t (a INT);\nSELECT FROM t;" ~line:2
    ~token:"t" ~mentions:"FROM" ()

let test_comments_and_whitespace () =
  let script =
    "-- header comment\nCREATE TABLE t ( -- inline\n  a INT\n);\n\n\
     SELECT a FROM t; -- trailing\n"
  in
  match parse_ok script with
  | [ w ] -> Alcotest.(check int) "one query" 1 (Workload.query_count w)
  | _ -> Alcotest.fail "expected one workload"

let test_parse_file_missing () =
  match Vp_parser.Workload_parser.parse_file "/nonexistent/x.sql" with
  | Ok _ -> Alcotest.fail "expected error"
  | Error e -> Alcotest.(check int) "line 0" 0 e.line

let test_roundtrip_through_algorithms () =
  (* The parsed paper example must produce the paper's layout. *)
  match parse_ok partsupp_script with
  | [ w ] ->
      let disk = Vp_cost.Disk.default in
      let oracle = Vp_cost.Io_model.oracle disk w in
      let r = Partitioner.exec Vp_algorithms.Hillclimb.algorithm (Partitioner.Request.make ~cost:oracle w) in
      let expected =
        Partitioning.of_names (Workload.table w)
          [ [ "PartKey"; "SuppKey" ]; [ "AvailQty"; "SupplyCost" ]; [ "Comment" ] ]
      in
      Alcotest.(check Testutil.partitioning)
        "paper layout" expected r.Partitioner.Response.partitioning
  | _ -> Alcotest.fail "expected one workload"

let suite =
  [
    Alcotest.test_case "basic script" `Quick test_basic_script;
    Alcotest.test_case "column widths" `Quick test_column_widths;
    Alcotest.test_case "select star" `Quick test_select_star;
    Alcotest.test_case "where adds references" `Quick test_where_adds_references;
    Alcotest.test_case "group/order by" `Quick test_group_order_by;
    Alcotest.test_case "multiple tables" `Quick test_multiple_tables;
    Alcotest.test_case "default rows" `Quick test_default_rows;
    Alcotest.test_case "errors" `Quick test_errors;
    Alcotest.test_case "malformed inputs" `Quick test_malformed_inputs;
    Alcotest.test_case "comments" `Quick test_comments_and_whitespace;
    Alcotest.test_case "missing file" `Quick test_parse_file_missing;
    Alcotest.test_case "roundtrip to layout" `Quick
      test_roundtrip_through_algorithms;
  ]
