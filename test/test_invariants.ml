(* Randomized invariants over every algorithm in the registry, driven by
   the deterministic SplitMix64 generator (so failures reproduce across
   runs and machines):

   - every algorithm returns a valid partitioning — each attribute in
     exactly one fragment, no empty fragments — for arbitrary workloads;
   - memoized cost evaluation is invisible: the cached cost of the chosen
     layout equals an uncached Io_model evaluation bit-for-bit. *)

open Vp_core

let disk = Vp_cost.Disk.default

let pair_count = 100

(* A random (table, workload) pair from stream [i]: 2-8 attributes of
   mixed widths, 1-6 queries with non-empty reference sets and skewed
   weights. *)
let random_workload root i =
  let g = Vp_datagen.Prng.split root i in
  let n = Vp_datagen.Prng.int_in g 2 8 in
  let attributes =
    List.init n (fun j ->
        Attribute.make
          (Printf.sprintf "c%d" j)
          (match j mod 3 with
          | 0 -> Attribute.Int32
          | 1 -> Attribute.Decimal
          | _ -> Attribute.Char (5 + j)))
  in
  let rows = Vp_datagen.Prng.int_in g 1_000 500_000 in
  let table =
    Table.make ~name:(Printf.sprintf "rand%d" i) ~attributes ~row_count:rows
  in
  let q_count = Vp_datagen.Prng.int_in g 1 6 in
  let queries =
    List.init q_count (fun j ->
        let mask = 1 + Vp_datagen.Prng.int g ((1 lsl n) - 1) in
        Query.make
          ~name:(Printf.sprintf "q%d" j)
          ~weight:(1.0 +. Vp_datagen.Prng.float g 4.0)
          ~references:(Attr_set.of_mask mask)
          ())
  in
  Workload.make table queries

let lineup = Vp_algorithms.Registry.six @ Vp_algorithms.Registry.baselines

let check_valid_partitioning ~ctx w (p : Partitioning.t) =
  let n = Table.attribute_count (Workload.table w) in
  Alcotest.(check bool)
    (ctx ^ ": covers all attributes") true
    (Testutil.valid_partitioning_of_workload p w);
  let groups = Partitioning.groups p in
  Alcotest.(check bool)
    (ctx ^ ": no empty fragment") true
    (List.for_all (fun g -> not (Attr_set.is_empty g)) groups);
  (* Disjointness: together with full coverage this means every attribute
     sits in exactly one fragment. *)
  Alcotest.(check int)
    (ctx ^ ": each attribute in exactly one fragment") n
    (List.fold_left (fun acc g -> acc + Attr_set.cardinal g) 0 groups)

let test_algorithms_return_valid_partitionings () =
  let root = Vp_datagen.Prng.create 0x5EEDL in
  for i = 0 to pair_count - 1 do
    let w = random_workload root i in
    let oracle = Vp_cost.Io_model.oracle disk w in
    List.iter
      (fun (a : Partitioner.t) ->
        let ctx = Printf.sprintf "%s on pair %d" a.Partitioner.name i in
        let r = Partitioner.exec a (Partitioner.Request.make ~cost:oracle w) in
        check_valid_partitioning ~ctx w r.Partitioner.Response.partitioning;
        Alcotest.(check (float 0.))
          (ctx ^ ": reported cost matches the oracle")
          (Vp_cost.Io_model.workload_cost disk w r.Partitioner.Response.partitioning)
          r.Partitioner.Response.cost)
      lineup
  done

let test_cached_cost_equals_uncached () =
  let root = Vp_datagen.Prng.create 0xCAFEL in
  for i = 0 to pair_count - 1 do
    let w = random_workload root i in
    let oracle = Vp_cost.Io_model.oracle disk w in
    let cache = Vp_parallel.Cost_cache.create () in
    let cached = Vp_parallel.Cost_cache.oracle ~cache disk w in
    let qcached = Vp_parallel.Cost_cache.query_oracle ~cache disk w in
    List.iter
      (fun (a : Partitioner.t) ->
        let ctx = Printf.sprintf "%s on pair %d" a.Partitioner.name i in
        let p = (Partitioner.exec a (Partitioner.Request.make ~cost:oracle w)).Partitioner.Response.partitioning in
        let uncached = Vp_cost.Io_model.workload_cost disk w p in
        (* Twice each: the second evaluation is a cache hit. *)
        Alcotest.(check (float 0.)) (ctx ^ ": cached miss") uncached (cached p);
        Alcotest.(check (float 0.)) (ctx ^ ": cached hit") uncached (cached p);
        Alcotest.(check (float 0.)) (ctx ^ ": query-cached miss") uncached
          (qcached p);
        Alcotest.(check (float 0.)) (ctx ^ ": query-cached hit") uncached
          (qcached p))
      lineup
  done

(* The degradation contract (DESIGN.md): a budgeted run always returns a
   valid partitioning, its status is consistent with the budget's state,
   and growing the budget never yields a more expensive layout — each
   search keeps a best-so-far incumbent along a deterministic evaluation
   order, so more budget can only extend the candidate set it minimizes
   over. *)
let budget_ladder = [ 2; 8; 32; 128; 512 ]

let test_budget_monotonicity () =
  let root = Vp_datagen.Prng.create 0xB0D6E7L in
  for i = 0 to 14 do
    let w = random_workload root i in
    let oracle = Vp_cost.Io_model.oracle disk w in
    let delta = Vp_cost.Io_model.Incremental.factory disk w in
    List.iter
      (fun (a : Partitioner.t) ->
        let costs =
          List.map
            (fun max_steps ->
              let budget = Vp_robust.Budget.create ~max_steps () in
              let ctx =
                Printf.sprintf "%s on pair %d, %d steps" a.Partitioner.name i
                  max_steps
              in
              let r =
                Partitioner.exec a
                  (Partitioner.Request.make ~budget ~delta ~cost:oracle w)
              in
              check_valid_partitioning ~ctx w r.Partitioner.Response.partitioning;
              (match r.Partitioner.Response.status with
              | Partitioner.Complete ->
                  Alcotest.(check bool)
                    (ctx ^ ": complete iff budget not exhausted") false
                    (Vp_robust.Budget.exhausted budget)
              | Partitioner.Timed_out { steps; elapsed_seconds } ->
                  Alcotest.(check bool)
                    (ctx ^ ": timed out iff budget exhausted") true
                    (Vp_robust.Budget.exhausted budget);
                  Alcotest.(check bool) (ctx ^ ": steps within budget") true
                    (steps >= 0 && steps <= max_steps + 1);
                  Alcotest.(check bool) (ctx ^ ": elapsed non-negative") true
                    (elapsed_seconds >= 0.0));
              r.Partitioner.Response.cost)
            budget_ladder
        in
        let rec pairs = function
          | c1 :: (c2 :: _ as rest) ->
              Alcotest.(check bool)
                (Printf.sprintf
                   "%s on pair %d: larger budget never costlier (%g -> %g)"
                   a.Partitioner.name i c1 c2)
                true (c2 <= c1);
              pairs rest
          | [ _ ] | [] -> ()
        in
        pairs costs)
      (Vp_algorithms.Registry.six
      @ [
          Vp_experiments.Common.brute_force disk;
          Vp_algorithms.Ilp.with_bound disk;
          Vp_algorithms.Hypergraph.algorithm;
        ])
  done

(* Delta probes must charge the budget exactly like full re-costs: under
   any step budget, the delta and full paths must agree on layout, cost
   bits, status (including the step count at exhaustion) AND the counted
   oracle stats. If a delta probe skipped a tick, double-charged one, or
   dodged the fault/counter bookkeeping of [Partitioner.Counted], the
   exhaustion point would shift and one of these renderings would
   diverge. *)
let test_budget_delta_parity () =
  let root = Vp_datagen.Prng.create 0xDE17AL in
  let was = Partitioner.Delta.enabled () in
  Fun.protect
    ~finally:(fun () -> Partitioner.Delta.set_enabled was)
    (fun () ->
      for i = 0 to 14 do
        let w = random_workload root i in
        List.iter
          (fun (a : Partitioner.t) ->
            List.iter
              (fun max_steps ->
                let run enabled =
                  Partitioner.Delta.set_enabled enabled;
                  let budget = Vp_robust.Budget.create ~max_steps () in
                  let oracle = Vp_cost.Io_model.oracle disk w in
                  let delta = Vp_cost.Io_model.Incremental.factory disk w in
                  let r =
                    Partitioner.exec a
                      (Partitioner.Request.make ~budget ~delta ~cost:oracle w)
                  in
                  Printf.sprintf "%s cost=%Lx status=%s calls=%d candidates=%d"
                    (Partitioning.to_string r.Partitioner.Response.partitioning)
                    (Int64.bits_of_float r.Partitioner.Response.cost)
                    (match r.Partitioner.Response.status with
                    | Partitioner.Complete -> "complete"
                    | Partitioner.Timed_out { steps; _ } ->
                        Printf.sprintf "timed_out:%d" steps)
                    r.Partitioner.Response.stats.Partitioner.cost_calls
                    r.Partitioner.Response.stats.Partitioner.candidates
                in
                let full = run false in
                let with_delta = run true in
                Alcotest.(check string)
                  (Printf.sprintf "%s on pair %d, %d steps: delta = full"
                     a.Partitioner.name i max_steps)
                  full with_delta)
              budget_ladder)
          (Vp_algorithms.Registry.six
      @ [
          Vp_experiments.Common.brute_force disk;
          Vp_algorithms.Ilp.with_bound disk;
          Vp_algorithms.Hypergraph.algorithm;
        ])
      done)

let test_algorithm_registry_errors () =
  Alcotest.(check bool) "find_opt unknown" true
    (Vp_algorithms.Registry.find_opt "nope" = None);
  Alcotest.(check bool) "find_opt known" true
    (Vp_algorithms.Registry.find_opt "hillclimb" <> None);
  match Vp_algorithms.Registry.find "nope" with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument msg ->
      List.iter
        (fun needle ->
          Alcotest.(check bool)
            (Printf.sprintf "error mentions %s" needle)
            true
            (let h = String.length msg and n = String.length needle in
             let rec go k =
               k + n <= h && (String.sub msg k n = needle || go (k + 1))
             in
             n = 0 || go 0))
        [ "nope"; "HillClimb"; "Column" ]

let suite =
  [
    Alcotest.test_case "algorithms return valid partitionings" `Quick
      test_algorithms_return_valid_partitionings;
    Alcotest.test_case "cached cost equals uncached" `Quick
      test_cached_cost_equals_uncached;
    Alcotest.test_case "algorithm registry errors" `Quick
      test_algorithm_registry_errors;
    Alcotest.test_case "budget monotonicity" `Quick test_budget_monotonicity;
    Alcotest.test_case "budget parity: delta = full" `Quick
      test_budget_delta_parity;
  ]
