(* Differential and property tests for the incremental cost-delta oracle
   (Vp_cost.Io_model.Incremental). The contract under test is exactness:
   every cost a delta session returns — for rebases and for merge/split/
   move peeks — must equal a from-scratch [Io_model.workload_cost] of the
   target partitioning TO THE LAST BIT, so all comparisons here are on
   [Int64.bits_of_float], never within an epsilon. *)

open Vp_core
module Inc = Vp_cost.Io_model.Incremental

let disk = Vp_cost.Disk.default

let full_cost w p = Vp_cost.Io_model.workload_cost disk w p

let bits = Int64.bits_of_float

let check_bits msg expected actual =
  Alcotest.(check int64) msg (bits expected) (bits actual)

(* --- seeded-random moves --------------------------------------------- *)

type move =
  | Merge of Attr_set.t * Attr_set.t
  | Split of Attr_set.t * Attr_set.t  (* group, proper nonempty subset *)
  | Move of int * Attr_set.t  (* attribute, destination group *)

let describe = function
  | Merge (a, b) ->
      Printf.sprintf "merge %s %s" (Attr_set.to_string a)
        (Attr_set.to_string b)
  | Split (g, sub) ->
      Printf.sprintf "split %s out of %s" (Attr_set.to_string sub)
        (Attr_set.to_string g)
  | Move (a, dst) ->
      Printf.sprintf "move %d into %s" a (Attr_set.to_string dst)

(* A random legal move on [p], or None if [p] admits none (single
   singleton group). [rand k] must return a uniform int in [0, k). *)
let random_move rand p =
  let groups = Partitioning.group_array p in
  let k = Array.length groups in
  let merge () =
    if k < 2 then None
    else
      let i = rand k in
      let j = (i + 1 + rand (k - 1)) mod k in
      Some (Merge (groups.(i), groups.(j)))
  in
  let split () =
    let wide =
      Array.to_list groups
      |> List.filter (fun g -> Attr_set.cardinal g >= 2)
    in
    match wide with
    | [] -> None
    | _ ->
        let g = List.nth wide (rand (List.length wide)) in
        let attrs = Attr_set.to_list g in
        (* A uniformly random proper nonempty subset: keep each attribute
           with probability 1/2, then repair the two illegal outcomes. *)
        let sub = List.filter (fun _ -> rand 2 = 0) attrs in
        let sub =
          match sub with
          | [] -> [ List.nth attrs (rand (List.length attrs)) ]
          | l when List.length l = List.length attrs -> List.tl l
          | l -> l
        in
        Some (Split (g, Attr_set.of_list sub))
  in
  let move () =
    if k < 2 then None
    else
      let attr = rand (Partitioning.attribute_count p) in
      let src = Partitioning.group_of p attr in
      let dsts =
        Array.to_list groups
        |> List.filter (fun g -> not (Attr_set.equal g src))
      in
      Some (Move (attr, List.nth dsts (rand (List.length dsts))))
  in
  match rand 3 with
  | 0 -> ( match merge () with Some m -> Some m | None -> split ())
  | 1 -> ( match split () with Some m -> Some m | None -> move ())
  | _ -> ( match move () with Some m -> Some m | None -> split ())

(* The target partitioning of a move, built WITHOUT the session — for
   moves, by editing the group list directly rather than through the
   split-then-merge composition [cost_move] uses internally. *)
let apply_move p = function
  | Merge (a, b) -> Partitioning.merge_groups p a b
  | Split (g, sub) -> Partitioning.split_group p g sub
  | Move (attr, dst) ->
      let groups =
        Partitioning.groups p
        |> List.filter_map (fun g ->
               if Attr_set.equal g dst then
                 Some (Attr_set.add attr g)
               else
                 let g' = Attr_set.remove attr g in
                 if Attr_set.is_empty g' then None else Some g')
      in
      Partitioning.of_groups ~n:(Partitioning.attribute_count p) groups

let peek_cost t = function
  | Merge (a, b) -> Inc.cost_merge t a b
  | Split (g, sub) -> Inc.cost_split t ~group:g ~sub
  | Move (attr, dst) -> Inc.cost_move t ~attr ~dst

let peek_delta t = function
  | Merge (a, b) -> Inc.delta_merge t a b
  | Split (g, sub) -> Inc.delta_split t ~group:g ~sub
  | Move (attr, dst) -> Inc.delta_move t ~attr ~dst

let random_base rand w =
  Enumeration.random_partitioning rand
    (Table.attribute_count (Workload.table w))

(* --- the workload corpus --------------------------------------------- *)

let corpus () =
  let synth seed attributes queries =
    ( Printf.sprintf "synthetic-%Ld-%d" seed attributes,
      Vp_benchmarks.Synthetic.workload ~seed ~rows:50_000 ~attributes
        ~clusters:3 ~queries ~scatter:0.2 () )
  in
  List.map
    (fun w -> (Table.name (Workload.table w), w))
    (Vp_benchmarks.Tpch.workloads ~sf:1.0 @ Vp_benchmarks.Ssb.workloads ~sf:1.0)
  @ [ synth 3L 10 14; synth 17L 14 20; synth 23L 7 9 ]

(* --- differential suite ---------------------------------------------- *)

(* For every workload: [bases] seeded-random base partitionings, each
   rebased into a fresh session and probed with [moves_per_base] random
   moves; every peeked cost and delta must match the full re-cost of the
   independently constructed target, bit for bit. Runs thousands of
   cases across TPC-H, SSB and the synthetic generator. *)
let test_differential () =
  List.iter
    (fun (name, w) ->
      let state = Random.State.make [| 0x5eed; Hashtbl.hash name |] in
      let rand k = Random.State.int state k in
      for base_no = 1 to 40 do
        let p0 = random_base rand w in
        let t = Inc.create disk w in
        check_bits
          (Printf.sprintf "%s base %d: goto = full re-cost" name base_no)
          (full_cost w p0) (Inc.goto t p0);
        for _ = 1 to 4 do
          match random_move rand p0 with
          | None -> ()
          | Some m ->
              let target = apply_move p0 m in
              let full = full_cost w target in
              let label =
                Printf.sprintf "%s base %d: %s" name base_no (describe m)
              in
              check_bits label full (peek_cost t m);
              check_bits (label ^ " (delta)")
                (full -. full_cost w p0)
                (peek_delta t m);
              (* Peeks must not have moved the base. *)
              check_bits (label ^ " (base intact)") (full_cost w p0)
                (Inc.base_cost t)
        done
      done)
    (corpus ())

(* Rebasing mid-session (rather than into a fresh session) must recost
   only what changed yet return the same bits as a fresh full costing. *)
let test_goto_chain () =
  List.iter
    (fun (name, w) ->
      let state = Random.State.make [| 0xcafe; Hashtbl.hash name |] in
      let rand k = Random.State.int state k in
      let t = Inc.create disk w in
      let p = ref (random_base rand w) in
      ignore (Inc.goto t !p : float);
      for step = 1 to 25 do
        (match random_move rand !p with
        | Some m -> p := apply_move !p m
        | None -> p := random_base rand w);
        check_bits
          (Printf.sprintf "%s step %d: goto = full re-cost" name step)
          (full_cost w !p) (Inc.goto t !p)
      done)
    (corpus ())

(* --- degenerate moves ------------------------------------------------ *)

let test_degenerate () =
  let w = Testutil.partsupp_workload in
  let n = Table.attribute_count (Workload.table w) in
  (* Moving the last attribute out of a singleton group empties the
     source: the result is exactly a merge of the two groups. *)
  let p =
    Partitioning.of_groups ~n
      [ Attr_set.singleton 0; Attr_set.of_list [ 1; 2; 3; 4 ] ]
  in
  let t = Inc.create disk w in
  ignore (Inc.goto t p : float);
  let dst = Attr_set.of_list [ 1; 2; 3; 4 ] in
  check_bits "singleton-source move = merge"
    (full_cost w (Partitioning.merge_groups p (Attr_set.singleton 0) dst))
    (Inc.cost_move t ~attr:0 ~dst);
  (* Moving an attribute into its own group is a no-op: the exact base
     cost, and a delta of exactly +0.0. *)
  check_bits "move into own group = base cost" (full_cost w p)
    (Inc.cost_move t ~attr:2 ~dst);
  check_bits "move into own group: delta = 0" 0.0
    (Inc.delta_move t ~attr:2 ~dst);
  (* Self-merge and whole-group splits are illegal exactly as they are
     for Partitioning itself. *)
  Alcotest.check_raises "self-merge raises"
    (Invalid_argument "Partitioning.merge_groups: same group") (fun () ->
      ignore (Inc.cost_merge t dst dst : float));
  Alcotest.check_raises "splitting a whole group raises"
    (Invalid_argument "Partitioning.split_group: subset equals the group")
    (fun () ->
      ignore (Inc.cost_split t ~group:dst ~sub:dst : float));
  Alcotest.check_raises "splitting a singleton raises"
    (Invalid_argument "Partitioning.split_group: subset equals the group")
    (fun () ->
      ignore
        (Inc.cost_split t ~group:(Attr_set.singleton 0)
           ~sub:(Attr_set.singleton 0)
          : float));
  Alcotest.check_raises "empty split subset raises"
    (Invalid_argument "Partitioning.split_group: empty subset") (fun () ->
      ignore (Inc.cost_split t ~group:dst ~sub:Attr_set.empty : float));
  (* Moving into a non-group is rejected. *)
  (match Inc.cost_move t ~attr:0 ~dst:(Attr_set.of_list [ 1; 2 ]) with
  | exception Invalid_argument _ -> ()
  | c -> Alcotest.failf "move into non-group returned %g" c);
  (* A split peeked on a two-attribute group leaves two singletons. *)
  let pair = Partitioning.of_groups ~n [ Attr_set.of_list [ 0; 1 ]; Attr_set.of_list [ 2; 3; 4 ] ] in
  ignore (Inc.goto t pair : float);
  check_bits "pair split = full re-cost"
    (full_cost w
       (Partitioning.split_group pair (Attr_set.of_list [ 0; 1 ])
          (Attr_set.singleton 0)))
    (Inc.cost_split t ~group:(Attr_set.of_list [ 0; 1 ])
       ~sub:(Attr_set.singleton 0))

(* --- move algebra properties ----------------------------------------- *)

(* A move followed by its inverse restores the base cost bits exactly. *)
let test_move_inverse () =
  List.iter
    (fun (name, w) ->
      let state = Random.State.make [| 0x1234; Hashtbl.hash name |] in
      let rand k = Random.State.int state k in
      for case = 1 to 20 do
        let p0 = random_base rand w in
        match random_move rand p0 with
        | None -> ()
        | Some m ->
            let t = Inc.create disk w in
            let c0 = Inc.goto t p0 in
            let p1 = apply_move p0 m in
            ignore (Inc.goto t p1 : float);
            check_bits
              (Printf.sprintf "%s case %d: %s then back" name case
                 (describe m))
              c0 (Inc.goto t p0)
      done)
    (corpus ())

(* A random walk of rebases, each step's delta checked against the full
   re-cost difference, must end with the base cost equal to one full
   [workload_cost] of the final partitioning — exact equality, no
   epsilon, despite dozens of intermediate re-costings. *)
let test_random_walk () =
  List.iter
    (fun (name, w) ->
      let state = Random.State.make [| 0x9e37; Hashtbl.hash name |] in
      let rand k = Random.State.int state k in
      let t = Inc.create disk w in
      let p = ref (random_base rand w) in
      let c = ref (Inc.goto t !p) in
      for step = 1 to 60 do
        match random_move rand !p with
        | None -> ()
        | Some m ->
            let next = apply_move !p m in
            let full_next = full_cost w next in
            let delta = peek_delta t m in
            check_bits
              (Printf.sprintf "%s walk %d: delta = full difference" name step)
              (full_next -. !c) delta;
            p := next;
            c := Inc.goto t next
      done;
      check_bits
        (Printf.sprintf "%s: walk end = one full re-cost" name)
        (full_cost w !p) !c)
    (corpus ())

(* --- session closures & factory -------------------------------------- *)

let test_session_closures () =
  let w = Vp_benchmarks.Tpch.workload ~sf:1.0 "partsupp" in
  let n = Table.attribute_count (Workload.table w) in
  let s = (Vp_cost.Io_model.Incremental.factory disk w) () in
  let p =
    Partitioning.of_groups ~n
      [ Attr_set.of_list [ 0; 1 ]; Attr_set.of_list [ 2; 3 ]; Attr_set.singleton 4 ]
  in
  check_bits "session goto" (full_cost w p) (s.Partitioner.Delta.goto p);
  check_bits "session base_cost" (full_cost w p)
    (s.Partitioner.Delta.base_cost ());
  check_bits "session cost_merge"
    (full_cost w
       (Partitioning.merge_groups p (Attr_set.of_list [ 0; 1 ])
          (Attr_set.singleton 4)))
    (s.Partitioner.Delta.cost_merge (Attr_set.of_list [ 0; 1 ])
       (Attr_set.singleton 4));
  check_bits "session cost_split"
    (full_cost w
       (Partitioning.split_group p (Attr_set.of_list [ 2; 3 ])
          (Attr_set.singleton 2)))
    (s.Partitioner.Delta.cost_split ~group:(Attr_set.of_list [ 2; 3 ])
       ~sub:(Attr_set.singleton 2));
  check_bits "session cost_move"
    (full_cost w
       (Partitioning.of_groups ~n
          [ Attr_set.singleton 0; Attr_set.of_list [ 1; 2; 3 ]; Attr_set.singleton 4 ]))
    (s.Partitioner.Delta.cost_move ~attr:1 ~dst:(Attr_set.of_list [ 2; 3 ]))

(* The kill switch gates [Request.delta], not the sessions themselves. *)
let test_kill_switch () =
  let w = Testutil.partsupp_workload in
  let delta = Vp_cost.Io_model.Incremental.factory disk w in
  let r =
    Partitioner.Request.make ~delta
      ~cost:(Vp_cost.Io_model.oracle disk w)
      w
  in
  let was = Partitioner.Delta.enabled () in
  Fun.protect
    ~finally:(fun () -> Partitioner.Delta.set_enabled was)
    (fun () ->
      Partitioner.Delta.set_enabled true;
      Alcotest.(check bool)
        "factory visible when enabled" true
        (Option.is_some (Partitioner.Request.delta r));
      Partitioner.Delta.set_enabled false;
      Alcotest.(check bool)
        "factory hidden when disabled" true
        (Option.is_none (Partitioner.Request.delta r)))

(* --- qcheck: random workloads, random bases, random moves ------------ *)

let prop_random_workloads =
  QCheck2.Test.make ~name:"delta oracle exact on random workloads"
    ~count:150
    QCheck2.Gen.(
      let* w = Testutil.gen_workload 8 6 in
      let* p_seed = int in
      let* m_seed = small_nat in
      return (w, p_seed, m_seed))
    (fun (w, p_seed, m_seed) ->
      let state = Random.State.make [| p_seed; m_seed |] in
      let rand k = Random.State.int state k in
      let p0 = random_base rand w in
      let t = Inc.create disk w in
      let c0 = Inc.goto t p0 in
      bits c0 = bits (full_cost w p0)
      &&
      match random_move rand p0 with
      | None -> true
      | Some m ->
          let target = apply_move p0 m in
          bits (peek_cost t m) = bits (full_cost w target)
          && bits (Inc.goto t target) = bits (full_cost w target))

let suite =
  [
    Alcotest.test_case "differential: peeks = full re-cost" `Quick
      test_differential;
    Alcotest.test_case "differential: goto chain = full re-cost" `Quick
      test_goto_chain;
    Alcotest.test_case "degenerate moves" `Quick test_degenerate;
    Alcotest.test_case "move + inverse restores cost bits" `Quick
      test_move_inverse;
    Alcotest.test_case "random walk ends at one full re-cost" `Quick
      test_random_walk;
    Alcotest.test_case "session closures mirror the module" `Quick
      test_session_closures;
    Alcotest.test_case "kill switch gates Request.delta" `Quick
      test_kill_switch;
    Testutil.qtest prop_random_workloads;
  ]
