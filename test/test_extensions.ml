(* Tests for the extension modules: the selection-aware cost model, query
   grouping and replicated layouts. *)

open Vp_core

let disk = Vp_cost.Disk.default

(* --- Selection model --- *)

let sel attrs selectivity =
  { Vp_cost.Selection_model.attributes = Attr_set.of_list attrs; selectivity }

let q = Testutil.partsupp_q1 (* refs {0,1,2,3} *)

let table = Testutil.partsupp

let layout =
  Partitioning.of_names table
    [ [ "PartKey"; "SuppKey" ]; [ "AvailQty"; "SupplyCost" ]; [ "Comment" ] ]

let test_selection_full_selectivity_not_cheaper () =
  (* With selectivity 1.0 the fetch plan degenerates to at least the scan
     cost, so the selection-aware cost is >= the base cost minus buffer-
     sharing differences; sanity: it must be positive and finite. *)
  let c = Vp_cost.Selection_model.query_cost disk table layout q (sel [ 0 ] 1.0) in
  Alcotest.(check bool) "positive" true (c > 0.0 && Float.is_finite c)

let test_selection_tiny_selectivity_cheaper () =
  let base = Vp_cost.Io_model.query_cost disk table layout q in
  let aware =
    Vp_cost.Selection_model.query_cost disk table layout q (sel [ 0 ] 1e-7)
  in
  Alcotest.(check bool) "fetch plan wins" true (aware < base)

let test_selection_monotone_in_selectivity () =
  let cost s =
    Vp_cost.Selection_model.query_cost disk table layout q (sel [ 0 ] s)
  in
  let previous = ref 0.0 in
  List.iter
    (fun s ->
      let c = cost s in
      Alcotest.(check bool)
        (Printf.sprintf "monotone at %g" s)
        true
        (c >= !previous -. 1e-12);
      previous := c)
    [ 1e-8; 1e-6; 1e-4; 1e-2; 1.0 ]

let test_selection_validation () =
  Alcotest.check_raises "attrs outside footprint"
    (Invalid_argument
       "Selection_model: selection attributes outside query footprint")
    (fun () ->
      ignore (Vp_cost.Selection_model.query_cost disk table layout q (sel [ 4 ] 0.5)));
  Alcotest.check_raises "bad selectivity"
    (Invalid_argument "Selection_model: selectivity outside [0, 1]") (fun () ->
      ignore
        (Vp_cost.Selection_model.query_cost disk table layout q (sel [ 0 ] 2.0)))

let test_selection_crossover_formula () =
  let x =
    Vp_cost.Selection_model.crossover_selectivity disk ~rows:60_000_000
      ~row_size:4
  in
  (* The paper's ballpark: a handful of 1e-6..1e-4. *)
  Alcotest.(check bool) "in the expected decade range" true
    (x > 1e-7 && x < 1e-3)

let test_selection_workload_none_matches_base () =
  let w = Testutil.partsupp_workload in
  Alcotest.(check (Testutil.close ~eps:1e-12 ()))
    "no selections = base model"
    (Vp_cost.Io_model.workload_cost disk w layout)
    (Vp_cost.Selection_model.workload_cost disk w (fun _ -> None) layout)

(* --- Query grouping --- *)

let test_jaccard () =
  Alcotest.(check (float 1e-12)) "overlap 2/5" (2.0 /. 5.0)
    (Vp_algorithms.Query_grouping.jaccard Testutil.partsupp_q1
       Testutil.partsupp_q2);
  Alcotest.(check (float 1e-12)) "self" 1.0
    (Vp_algorithms.Query_grouping.jaccard Testutil.partsupp_q1
       Testutil.partsupp_q1)

let test_grouping_k1 () =
  let w = Vp_benchmarks.Tpch.workload ~sf:1.0 "orders" in
  let groups = Vp_algorithms.Query_grouping.group w ~k:1 in
  Alcotest.(check int) "one group" 1 (List.length groups);
  Alcotest.(check int) "all queries" (Workload.query_count w)
    (List.length (List.hd groups))

let test_grouping_partition_property () =
  let w = Vp_benchmarks.Tpch.workload ~sf:1.0 "lineitem" in
  List.iter
    (fun k ->
      let groups = Vp_algorithms.Query_grouping.group w ~k in
      Alcotest.(check bool)
        (Printf.sprintf "k=%d group count" k)
        true
        (List.length groups <= k && List.length groups >= 1);
      let all = List.concat groups |> List.sort compare in
      Alcotest.(check (list int))
        (Printf.sprintf "k=%d covers all queries" k)
        (List.init (Workload.query_count w) Fun.id)
        all)
    [ 1; 2; 3; 5; 100 ]

let test_grouping_similar_together () =
  (* partsupp: Q1 {0,1,2,3} and Q2 {2,3,4} overlap; with a third disjoint
     query, k=2 must separate the outlier. *)
  let q3 = Query.make ~name:"q3" ~references:(Attr_set.singleton 4) () in
  let w = Workload.make table [ Testutil.partsupp_q1; Testutil.partsupp_q2; q3 ] in
  let groups = Vp_algorithms.Query_grouping.group w ~k:2 in
  Alcotest.(check (list (list int))) "q1,q2 together" [ [ 0; 1 ]; [ 2 ] ] groups

(* --- Replication --- *)

let cost_factory w = Vp_cost.Io_model.oracle disk w

let test_replication_single_equals_plain () =
  let w = Vp_benchmarks.Tpch.workload ~sf:1.0 "customer" in
  let hillclimb = Vp_algorithms.Registry.find "HillClimb" in
  let t =
    Vp_algorithms.Replication.build ~replicas:1 ~algorithm:hillclimb
      ~cost_factory w
  in
  let plain =
    Partitioner.exec hillclimb
      (Partitioner.Request.make ~cost:(cost_factory w) w)
  in
  Alcotest.(check int) "one replica" 1 (Vp_algorithms.Replication.replica_count t);
  Alcotest.(check (Testutil.close ~eps:1e-9 ()))
    "same cost" plain.Partitioner.Response.cost
    (Vp_algorithms.Replication.workload_cost ~cost_factory w t)

let test_replication_monotone_improvement () =
  let w = Vp_benchmarks.Tpch.workload ~sf:1.0 "lineitem" in
  let hillclimb = Vp_algorithms.Registry.find "HillClimb" in
  let cost r =
    let t =
      Vp_algorithms.Replication.build ~replicas:r ~algorithm:hillclimb
        ~cost_factory w
    in
    Vp_algorithms.Replication.workload_cost ~cost_factory w t
  in
  let pmv = Vp_cost.Io_model.pmv_cost disk w in
  let c1 = cost 1 and c4 = cost 4 in
  Alcotest.(check bool) "more replicas no worse" true (c4 <= c1 +. 1e-9);
  Alcotest.(check bool) "bounded below by PMV" true (c4 >= pmv -. 1e-9)

let test_replication_storage_factor () =
  let w = Vp_benchmarks.Tpch.workload ~sf:1.0 "customer" in
  let hillclimb = Vp_algorithms.Registry.find "HillClimb" in
  let t =
    Vp_algorithms.Replication.build ~replicas:3 ~algorithm:hillclimb
      ~cost_factory w
  in
  Alcotest.(check (float 0.0)) "3 copies"
    (float_of_int (Vp_algorithms.Replication.replica_count t))
    (Vp_algorithms.Replication.storage_factor w t)

let test_replication_validation () =
  let w = Vp_benchmarks.Tpch.workload ~sf:1.0 "customer" in
  Alcotest.check_raises "replicas 0"
    (Invalid_argument "Replication.build: replicas <= 0") (fun () ->
      ignore
        (Vp_algorithms.Replication.build ~replicas:0
           ~algorithm:(Vp_algorithms.Registry.find "HillClimb")
           ~cost_factory w))

let suite =
  [
    Alcotest.test_case "selection: selectivity 1.0 sane" `Quick
      test_selection_full_selectivity_not_cheaper;
    Alcotest.test_case "selection: tiny selectivity cheaper" `Quick
      test_selection_tiny_selectivity_cheaper;
    Alcotest.test_case "selection: monotone" `Quick
      test_selection_monotone_in_selectivity;
    Alcotest.test_case "selection: validation" `Quick test_selection_validation;
    Alcotest.test_case "selection: crossover" `Quick
      test_selection_crossover_formula;
    Alcotest.test_case "selection: none = base" `Quick
      test_selection_workload_none_matches_base;
    Alcotest.test_case "grouping: jaccard" `Quick test_jaccard;
    Alcotest.test_case "grouping: k=1" `Quick test_grouping_k1;
    Alcotest.test_case "grouping: partition property" `Quick
      test_grouping_partition_property;
    Alcotest.test_case "grouping: similar together" `Quick
      test_grouping_similar_together;
    Alcotest.test_case "replication: r=1 = plain" `Quick
      test_replication_single_equals_plain;
    Alcotest.test_case "replication: monotone" `Quick
      test_replication_monotone_improvement;
    Alcotest.test_case "replication: storage" `Quick
      test_replication_storage_factor;
    Alcotest.test_case "replication: validation" `Quick
      test_replication_validation;
  ]

(* --- Overlapping layouts (AutoPart partial replication) --- *)

let overlap_of lists =
  Vp_cost.Overlap_model.of_fragments ~n:5 (List.map Attr_set.of_list lists)

let test_overlap_validation () =
  Alcotest.check_raises "no cover"
    (Invalid_argument "Overlap_model: fragments do not cover all attributes")
    (fun () -> ignore (overlap_of [ [ 0; 1 ] ]));
  Alcotest.check_raises "empty fragment"
    (Invalid_argument "Overlap_model: empty fragment") (fun () ->
      ignore
        (Vp_cost.Overlap_model.of_fragments ~n:2
           [ Attr_set.empty; Attr_set.full 2 ]))

let test_overlap_storage () =
  let t = overlap_of [ [ 0; 1; 2; 3 ]; [ 2; 3; 4 ] ] in
  (* partsupp widths: 4 4 4 8 199; fragment bytes = 20 + 211 = 231 vs row
     219. *)
  Alcotest.(check int) "bytes" 231
    (Vp_cost.Overlap_model.storage_bytes table t);
  Alcotest.(check (float 1e-9)) "factor" (231.0 /. 219.0)
    (Vp_cost.Overlap_model.storage_factor table t);
  Alcotest.(check (float 1e-12)) "disjoint factor 1" 1.0
    (Vp_cost.Overlap_model.storage_factor table
       (Vp_cost.Overlap_model.of_partitioning layout))

let test_overlap_selection_prefers_exact_fragment () =
  (* Fragments: the whole row and an exact match for Q1's footprint; the
     selection must pick the exact fragment, not the wide one. *)
  let t = overlap_of [ [ 0; 1; 2; 3; 4 ]; [ 0; 1; 2; 3 ] ] in
  let chosen =
    Vp_cost.Overlap_model.select_fragments disk table t (Query.references q)
  in
  Alcotest.(check (list Testutil.attr_set))
    "exact fragment" [ Attr_set.of_list [ 0; 1; 2; 3 ] ] chosen

let test_overlap_cost_matches_disjoint_model () =
  (* On a disjoint layout the overlapping model must price queries exactly
     like the base model. *)
  let t = Vp_cost.Overlap_model.of_partitioning layout in
  let w = Testutil.partsupp_workload in
  Alcotest.(check (Testutil.close ~eps:1e-9 ()))
    "same as base"
    (Vp_cost.Io_model.workload_cost disk w layout)
    (Vp_cost.Overlap_model.workload_cost disk w t)

let test_overlap_replication_can_beat_disjoint () =
  (* Q1{0,1} and Q2{1,4} share only attribute 1. Any disjoint layout makes
     at least one query read two partitions (extra seeks) or an unneeded
     attribute; replicating attribute 1 into both fragments gives each
     query a single exact-match fragment. *)
  let q1 = Query.make ~name:"q1" ~references:(Attr_set.of_list [ 0; 1 ]) () in
  let q2 = Query.make ~name:"q2" ~references:(Attr_set.of_list [ 1; 4 ]) () in
  let w = Workload.make table [ q1; q2 ] in
  let replicated = overlap_of [ [ 0; 1 ]; [ 1; 4 ]; [ 2 ]; [ 3 ] ] in
  let replicated_cost = Vp_cost.Overlap_model.workload_cost disk w replicated in
  List.iter
    (fun groups ->
      let disjoint =
        Vp_cost.Overlap_model.of_partitioning
          (Partitioning.of_groups ~n:5 (List.map Attr_set.of_list groups))
      in
      Alcotest.(check bool)
        "replication beats disjoint alternative" true
        (replicated_cost
        < Vp_cost.Overlap_model.workload_cost disk w disjoint))
    [
      [ [ 0; 1 ]; [ 2 ]; [ 3 ]; [ 4 ] ];
      [ [ 0 ]; [ 1; 4 ]; [ 2 ]; [ 3 ] ];
      [ [ 0; 1; 4 ]; [ 2 ]; [ 3 ] ];
      [ [ 0 ]; [ 1 ]; [ 2 ]; [ 3 ]; [ 4 ] ];
    ]

let test_autopart_replicated_budget_one_is_disjoint () =
  let w = Vp_benchmarks.Tpch.workload ~sf:1.0 "partsupp" in
  let r = Vp_algorithms.Autopart_replicated.run ~space_budget:1.0 disk w in
  Alcotest.(check (float 1e-9)) "no extra storage" 1.0 r.storage_factor;
  (* Without slack the search degenerates to plain AutoPart. *)
  let plain =
    (Partitioner.exec Vp_algorithms.Autopart.algorithm
       (Partitioner.Request.make ~cost:(Vp_cost.Io_model.oracle disk w) w))
      .Partitioner.Response.cost
  in
  Alcotest.(check (Testutil.close ~eps:1e-6 ())) "same cost" plain r.cost

let test_autopart_replicated_budget_helps () =
  let w = Vp_benchmarks.Tpch.workload ~sf:1.0 "lineitem" in
  let tight = Vp_algorithms.Autopart_replicated.run ~space_budget:1.0 disk w in
  let loose = Vp_algorithms.Autopart_replicated.run ~space_budget:2.0 disk w in
  Alcotest.(check bool) "budget respected" true (loose.storage_factor <= 2.0);
  Alcotest.(check bool) "no worse with more budget" true
    (loose.cost <= tight.cost +. 1e-9)

let test_autopart_replicated_validation () =
  let w = Vp_benchmarks.Tpch.workload ~sf:1.0 "customer" in
  Alcotest.check_raises "budget < 1"
    (Invalid_argument "Autopart_replicated.run: space_budget < 1.0") (fun () ->
      ignore (Vp_algorithms.Autopart_replicated.run ~space_budget:0.5 disk w))

let overlap_suite =
  [
    Alcotest.test_case "overlap: validation" `Quick test_overlap_validation;
    Alcotest.test_case "overlap: storage" `Quick test_overlap_storage;
    Alcotest.test_case "overlap: selection exact" `Quick
      test_overlap_selection_prefers_exact_fragment;
    Alcotest.test_case "overlap: disjoint = base model" `Quick
      test_overlap_cost_matches_disjoint_model;
    Alcotest.test_case "overlap: replication helps" `Quick
      test_overlap_replication_can_beat_disjoint;
    Alcotest.test_case "autopart-replicated: budget 1.0" `Quick
      test_autopart_replicated_budget_one_is_disjoint;
    Alcotest.test_case "autopart-replicated: budget helps" `Quick
      test_autopart_replicated_budget_helps;
    Alcotest.test_case "autopart-replicated: validation" `Quick
      test_autopart_replicated_validation;
  ]

let suite = suite @ overlap_suite
