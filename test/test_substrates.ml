(* Tests for the algorithm substrates: bond energy clustering, the k-way
   graph partitioner, the exact-cover knapsack and mutual information. *)

open Vp_core

(* --- Bond energy --- *)

let is_permutation n arr =
  Array.length arr = n
  && List.sort compare (Array.to_list arr) = List.init n Fun.id

let test_bea_permutation () =
  let m = Affinity.of_workload Testutil.partsupp_workload in
  let order = Vp_algorithms.Bond_energy.order m in
  Alcotest.(check bool) "permutation of 0..4" true (is_permutation 5 order)

let test_bea_affine_adjacency () =
  (* AvailQty(2) and SupplyCost(3) have the highest pairwise bond in the
     partsupp fixture (bond 11, vs 4 for the PartKey/SuppKey pair — bonds
     are row products, not raw affinities); bond energy must place them
     adjacently. *)
  let m = Affinity.of_workload Testutil.partsupp_workload in
  let order = Vp_algorithms.Bond_energy.order m in
  let pos x = Option.get (Array.find_index (fun v -> v = x) order) in
  Alcotest.(check int) "AvailQty next to SupplyCost" 1 (abs (pos 2 - pos 3));
  Alcotest.(check bool)
    "strongest pair really is (2,3)" true
    (Vp_algorithms.Bond_energy.bond m 2 3 > Vp_algorithms.Bond_energy.bond m 0 1)

let test_bea_insert () =
  let m = Affinity.of_workload Testutil.partsupp_workload in
  let order = Vp_algorithms.Bond_energy.insert m [| 0; 2 |] 4 in
  Alcotest.(check bool) "3 elements" true (Array.length order = 3);
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Bond_energy.insert: attribute already placed")
    (fun () -> ignore (Vp_algorithms.Bond_energy.insert m [| 0; 2 |] 0))

let test_bond_symmetric () =
  let m = Affinity.of_workload Testutil.partsupp_workload in
  Alcotest.(check (float 0.0))
    "bond symmetric"
    (Vp_algorithms.Bond_energy.bond m 0 3)
    (Vp_algorithms.Bond_energy.bond m 3 0)

let prop_bea_always_permutation =
  QCheck2.Test.make ~name:"BEA order is a permutation" ~count:100
    (Testutil.gen_workload 9 6)
    (fun w ->
      let order = Vp_algorithms.Bond_energy.order (Affinity.of_workload w) in
      is_permutation 9 order)

(* --- Graph partitioner --- *)

let edge a b weight = { Vp_algorithms.Graph_partition.a; b; weight }

let test_graph_basic () =
  let labels =
    Vp_algorithms.Graph_partition.partition ~node_count:4 ~max_size:2
      [ edge 0 1 5.0; edge 2 3 4.0; edge 1 2 1.0 ]
  in
  Alcotest.(check int) "0 with 1" labels.(0) labels.(1);
  Alcotest.(check int) "2 with 3" labels.(2) labels.(3);
  Alcotest.(check bool) "two components" true (labels.(0) <> labels.(2))

let test_graph_size_bound () =
  let labels =
    Vp_algorithms.Graph_partition.partition ~node_count:6 ~max_size:3
      [ edge 0 1 9.0; edge 1 2 8.0; edge 2 3 7.0; edge 3 4 6.0; edge 4 5 5.0 ]
  in
  let sizes = Hashtbl.create 4 in
  Array.iter
    (fun l ->
      Hashtbl.replace sizes l (1 + Option.value ~default:0 (Hashtbl.find_opt sizes l)))
    labels;
  Hashtbl.iter
    (fun _ size -> Alcotest.(check bool) "size <= 3" true (size <= 3))
    sizes

let test_graph_isolated_nodes () =
  let labels =
    Vp_algorithms.Graph_partition.partition ~node_count:3 ~max_size:2 []
  in
  Alcotest.(check (array int)) "each its own" [| 0; 1; 2 |] labels

let test_graph_components () =
  let comps = Vp_algorithms.Graph_partition.components [| 0; 1; 0; 1; 2 |] in
  Alcotest.(check (list (list int))) "grouped" [ [ 0; 2 ]; [ 1; 3 ]; [ 4 ] ] comps

let test_graph_invalid () =
  Alcotest.check_raises "bad endpoint"
    (Invalid_argument "Graph_partition: edge endpoint out of range") (fun () ->
      ignore
        (Vp_algorithms.Graph_partition.partition ~node_count:2 ~max_size:1
           [ edge 0 5 1.0 ]))

let prop_graph_bound_respected =
  QCheck2.Test.make ~name:"graph components bounded" ~count:100
    QCheck2.Gen.(
      let* n = int_range 1 12 in
      let* k = int_range 1 5 in
      let* edges =
        list_size (int_range 0 20)
          (let* a = int_range 0 (n - 1) in
           let* b = int_range 0 (n - 1) in
           let* w = float_range 0.0 10.0 in
           return (edge a b w))
      in
      return (n, k, edges))
    (fun (n, k, edges) ->
      let labels =
        Vp_algorithms.Graph_partition.partition ~node_count:n ~max_size:k edges
      in
      let sizes = Hashtbl.create 8 in
      Array.iter
        (fun l ->
          Hashtbl.replace sizes l
            (1 + Option.value ~default:0 (Hashtbl.find_opt sizes l)))
        labels;
      Hashtbl.fold (fun _ s acc -> acc && s <= k) sizes true)

(* --- Knapsack exact cover --- *)

let item attrs benefit =
  { Vp_algorithms.Knapsack.group = Attr_set.of_list attrs; benefit }

let test_knapsack_trivial () =
  let cover, benefit = Vp_algorithms.Knapsack.solve ~n:3 [] in
  Alcotest.(check (float 0.0)) "benefit 0" 0.0 benefit;
  Alcotest.(check int) "singletons" 3 (List.length cover)

let test_knapsack_picks_best () =
  let cover, benefit =
    Vp_algorithms.Knapsack.solve ~n:4
      [ item [ 0; 1 ] 3.0; item [ 2; 3 ] 3.0; item [ 1; 2 ] 5.0 ]
  in
  (* {1,2} at 5.0 beats {0,1}+{2,3} at 6.0? No: 6.0 > 5.0 — the pair of
     disjoint items wins. *)
  Alcotest.(check (float 0.0)) "best" 6.0 benefit;
  Alcotest.(check int) "two groups" 2 (List.length cover)

let test_knapsack_overlap_resolution () =
  let _, benefit =
    Vp_algorithms.Knapsack.solve ~n:3
      [ item [ 0; 1 ] 4.0; item [ 1; 2 ] 4.0; item [ 0; 1; 2 ] 5.0 ]
  in
  (* Overlapping items can't both be chosen; the triple at 5.0 wins over
     either pair (4.0). *)
  Alcotest.(check (float 0.0)) "triple wins" 5.0 benefit

let test_knapsack_cover_is_partition () =
  let cover, _ =
    Vp_algorithms.Knapsack.solve ~n:5
      [ item [ 0; 2 ] 1.0; item [ 1; 3 ] 2.0; item [ 2; 4 ] 3.0 ]
  in
  let p = Partitioning.of_groups ~n:5 cover in
  Alcotest.(check int) "valid partition" 5 (Partitioning.attribute_count p)

let test_knapsack_invalid () =
  Alcotest.check_raises "negative benefit"
    (Invalid_argument "Knapsack.solve: negative benefit") (fun () ->
      ignore (Vp_algorithms.Knapsack.solve ~n:2 [ item [ 0 ] (-1.0) ]))

(* Exhaustive cross-check on small instances: the DFS must match a brute
   force over all set partitions scored by summed benefits. *)
let prop_knapsack_matches_exhaustive =
  QCheck2.Test.make ~name:"knapsack matches exhaustive" ~count:60
    QCheck2.Gen.(
      let* n = int_range 2 6 in
      let* items =
        list_size (int_range 0 6)
          (let* mask = int_range 1 ((1 lsl n) - 1) in
           let* benefit = float_range 0.0 10.0 in
           return { Vp_algorithms.Knapsack.group = Attr_set.of_mask mask; benefit })
      in
      return (n, items))
    (fun (n, items) ->
      let _, got = Vp_algorithms.Knapsack.solve ~n items in
      (* Exhaustive: score every set partition by the total benefit of its
         groups that appear among the items (best benefit per group). *)
      let best_for_group g =
        List.fold_left
          (fun acc it ->
            if Attr_set.equal it.Vp_algorithms.Knapsack.group g then
              max acc it.Vp_algorithms.Knapsack.benefit
            else acc)
          0.0 items
      in
      let best = ref 0.0 in
      Enumeration.iter_partitions n (fun p ->
          let score =
            List.fold_left
              (fun acc g -> acc +. best_for_group g)
              0.0 (Partitioning.groups p)
          in
          if score > !best then best := score);
      Float.abs (got -. !best) < 1e-9)

(* --- Mutual information --- *)

module M = Vp_algorithms.Mutual_information

let test_mi_identical_signatures () =
  let w = Testutil.partsupp_workload in
  (* PartKey(0) and SuppKey(1) have identical access signatures. *)
  Alcotest.(check (float 1e-9)) "nmi = 1" 1.0 (M.normalized w 0 1)

let test_mi_disjoint_signatures () =
  let w = Testutil.partsupp_workload in
  (* PartKey(0) and Comment(4) are never co-accessed: with only two
     queries their indicators are perfectly anti-correlated, and MI of a
     deterministic relationship is maximal — so test the raw MI sign
     rather than independence. *)
  Alcotest.(check bool) "mi >= 0" true (M.mutual w 0 4 >= 0.0)

let test_mi_entropy () =
  let w = Testutil.partsupp_workload in
  (* AvailQty is accessed by both queries: probability 1 -> entropy 0. *)
  Alcotest.(check (float 1e-9)) "entropy 0" 0.0 (M.entropy w 2);
  (* PartKey accessed by 1 of 2 queries: entropy 1 bit. *)
  Alcotest.(check (float 1e-9)) "entropy 1" 1.0 (M.entropy w 0)

let test_interestingness_singleton_zero () =
  let w = Testutil.partsupp_workload in
  Alcotest.(check (float 0.0)) "singleton" 0.0
    (M.interestingness w (Attr_set.singleton 0));
  Alcotest.(check (float 1e-9)) "identical pair maximal" 1.0
    (M.interestingness w (Attr_set.of_list [ 0; 1 ]))

let prop_mi_symmetric =
  QCheck2.Test.make ~name:"MI symmetric and bounded" ~count:100
    QCheck2.Gen.(triple (Testutil.gen_workload 6 6) (int_range 0 5) (int_range 0 5))
    (fun (w, i, j) ->
          let a = M.mutual w i j and b = M.mutual w j i in
      Float.abs (a -. b) < 1e-9
      && a >= 0.0
      && M.normalized w i j >= 0.0
      && M.normalized w i j <= 1.0 +. 1e-9)

let suite =
  [
    Alcotest.test_case "BEA permutation" `Quick test_bea_permutation;
    Alcotest.test_case "BEA adjacency" `Quick test_bea_affine_adjacency;
    Alcotest.test_case "BEA insert" `Quick test_bea_insert;
    Alcotest.test_case "bond symmetric" `Quick test_bond_symmetric;
    Testutil.qtest prop_bea_always_permutation;
    Alcotest.test_case "graph basic" `Quick test_graph_basic;
    Alcotest.test_case "graph size bound" `Quick test_graph_size_bound;
    Alcotest.test_case "graph isolated nodes" `Quick test_graph_isolated_nodes;
    Alcotest.test_case "graph components" `Quick test_graph_components;
    Alcotest.test_case "graph invalid" `Quick test_graph_invalid;
    Testutil.qtest prop_graph_bound_respected;
    Alcotest.test_case "knapsack trivial" `Quick test_knapsack_trivial;
    Alcotest.test_case "knapsack picks best" `Quick test_knapsack_picks_best;
    Alcotest.test_case "knapsack overlap" `Quick test_knapsack_overlap_resolution;
    Alcotest.test_case "knapsack cover valid" `Quick test_knapsack_cover_is_partition;
    Alcotest.test_case "knapsack invalid" `Quick test_knapsack_invalid;
    Testutil.qtest prop_knapsack_matches_exhaustive;
    Alcotest.test_case "MI identical signatures" `Quick test_mi_identical_signatures;
    Alcotest.test_case "MI sign" `Quick test_mi_disjoint_signatures;
    Alcotest.test_case "MI entropy" `Quick test_mi_entropy;
    Alcotest.test_case "interestingness" `Quick test_interestingness_singleton_zero;
    Testutil.qtest prop_mi_symmetric;
  ]

(* --- Navathe z objective and clique rule --- *)

let test_z_split_prefers_clean_cut () =
  (* Two disjoint query clusters: attrs {0,1} and {2,3}, never co-accessed.
     The best split of the natural order must cut exactly between them with
     z >= 0. *)
  let table =
    Table.make ~name:"z" ~row_count:1000
      ~attributes:(List.init 4 (fun i ->
          Attribute.make (Printf.sprintf "a%d" i) Attribute.Int32))
  in
  let w =
    Workload.make table
      [
        Query.make ~name:"q1" ~references:(Attr_set.of_list [ 0; 1 ]) ();
        Query.make ~name:"q2" ~references:(Attr_set.of_list [ 2; 3 ]) ();
      ]
  in
  match Vp_algorithms.Navathe.best_z_split w [] [| 0; 1; 2; 3 |] 0 4 with
  | Some (cut, z) ->
      Alcotest.(check int) "cut between clusters" 2 cut;
      Alcotest.(check bool) "clean" true (z >= 0.0)
  | None -> Alcotest.fail "expected a split"

let test_clique_references () =
  let m = Affinity.of_workload Testutil.partsupp_workload in
  (* In the two-query fixture, AvailQty/SupplyCost co-occur twice (affinity
     2) while every other positive pair has affinity 1; the mean positive
     affinity is 9/8 = 1.125. *)
  let qty_cost = Attr_set.of_list [ 2; 3 ] in
  Alcotest.(check bool) "strong clique" true
    (Vp_algorithms.Navathe.is_affinity_clique m qty_cost);
  (* PartKey/SuppKey co-occur only once: below the mean, above zero. *)
  let keys = Attr_set.of_list [ 0; 1 ] in
  Alcotest.(check bool) "weak pair fails Mean_positive" false
    (Vp_algorithms.Navathe.is_affinity_clique ~reference:`Mean_positive m keys);
  Alcotest.(check bool) "weak pair passes Any_positive" true
    (Vp_algorithms.Navathe.is_affinity_clique ~reference:`Any_positive m keys);
  (* PartKey/Comment are never co-accessed: no clique under any rule. *)
  let never = Attr_set.of_list [ 0; 4 ] in
  Alcotest.(check bool) "zero pair fails even Any_positive" false
    (Vp_algorithms.Navathe.is_affinity_clique ~reference:`Any_positive m never)

let test_navathe_contiguity () =
  (* Navathe's result must be a set of contiguous runs of its clustered
     order. *)
  let w = Vp_benchmarks.Tpch.workload ~sf:1.0 "lineitem" in
  let order = Vp_algorithms.Navathe.clustered_order w in
  let position = Array.make (Array.length order) 0 in
  Array.iteri (fun pos attr -> position.(attr) <- pos) order;
  let oracle = Vp_cost.Io_model.oracle Vp_cost.Disk.default w in
  let r = Partitioner.exec Vp_algorithms.Navathe.algorithm (Partitioner.Request.make ~cost:oracle w) in
  List.iter
    (fun g ->
      let positions =
        List.sort compare (List.map (fun a -> position.(a)) (Attr_set.to_list g))
      in
      match positions with
      | [] -> ()
      | first :: rest ->
          ignore
            (List.fold_left
               (fun prev p ->
                 Alcotest.(check int) "contiguous run" (prev + 1) p;
                 p)
               first rest))
    (Partitioning.groups r.Partitioner.Response.partitioning)

let suite =
  suite
  @ [
      Alcotest.test_case "z split clean cut" `Quick test_z_split_prefers_clean_cut;
      Alcotest.test_case "clique references" `Quick test_clique_references;
      Alcotest.test_case "navathe contiguity" `Quick test_navathe_contiguity;
    ]
