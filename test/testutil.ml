(* Shared helpers for the test suite: alcotest testables, qcheck generators
   for workloads and partitionings, small fixture tables, and the
   server-test fixtures (temp dirs, daemons, ports, clients). *)

open Vp_core

let attr_set = Alcotest.testable Attr_set.pp Attr_set.equal

let partitioning = Alcotest.testable Partitioning.pp Partitioning.equal

let close ?(eps = 1e-9) () = Alcotest.float eps

(* --- fixtures --- *)

(* The paper's Section 1.1 example: PartSupp with Q1/Q2. *)
let partsupp =
  Table.make ~name:"partsupp" ~row_count:8_000_000
    ~attributes:
      [
        Attribute.make "PartKey" Attribute.Int32;
        Attribute.make "SuppKey" Attribute.Int32;
        Attribute.make "AvailQty" Attribute.Int32;
        Attribute.make "SupplyCost" Attribute.Decimal;
        Attribute.make "Comment" (Attribute.Varchar 199);
      ]

let partsupp_q1 =
  Query.make ~name:"Q1"
    ~references:(Attr_set.of_list [ 0; 1; 2; 3 ])
    ()

let partsupp_q2 =
  Query.make ~name:"Q2" ~references:(Attr_set.of_list [ 2; 3; 4 ]) ()

let partsupp_workload = Workload.make partsupp [ partsupp_q1; partsupp_q2 ]

(* A tiny table whose costs are easy to compute by hand. *)
let tiny =
  Table.make ~name:"tiny" ~row_count:1000
    ~attributes:
      [
        Attribute.make "a" Attribute.Int32;
        Attribute.make "b" Attribute.Decimal;
        Attribute.make "c" (Attribute.Char 20);
      ]

(* --- qcheck generators --- *)

let gen_partitioning n =
  QCheck2.Gen.(
    map
      (fun seed ->
        let state = Random.State.make [| seed |] in
        Enumeration.random_partitioning (Random.State.int state) n)
      int)

(* A random workload over [n] attributes with 1..q_max queries. *)
let gen_workload ?(rows = 100_000) n q_max =
  QCheck2.Gen.(
    let gen_query i =
      map
        (fun mask ->
          let mask = 1 + (abs mask mod ((1 lsl n) - 1)) in
          Query.make
            ~name:(Printf.sprintf "q%d" i)
            ~references:(Attr_set.of_mask mask)
            ())
        int
    in
    let* q_count = int_range 1 q_max in
    let* queries =
      flatten_l (List.init q_count gen_query)
    in
    let attributes =
      List.init n (fun i ->
          Attribute.make
            (Printf.sprintf "c%d" i)
            (match i mod 3 with
            | 0 -> Attribute.Int32
            | 1 -> Attribute.Decimal
            | _ -> Attribute.Char (5 + i)))
    in
    let table = Table.make ~name:"rand" ~attributes ~row_count:rows in
    return (Workload.make table queries))

let valid_partitioning_of_workload p w =
  let n = Table.attribute_count (Workload.table w) in
  Partitioning.attribute_count p = n
  &&
  let union =
    List.fold_left Attr_set.union Attr_set.empty (Partitioning.groups p)
  in
  Attr_set.equal union (Attr_set.full n)

let qtest = QCheck_alcotest.to_alcotest

(* --- server fixtures --- *)

let unwrap = function
  | Ok v -> v
  | Error msg -> Alcotest.failf "unexpected error: %s" msg

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i =
    i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1))
  in
  go 0

let rec remove_tree path =
  match Sys.is_directory path with
  | exception Sys_error _ -> ()
  | true ->
      Array.iter
        (fun f -> remove_tree (Filename.concat path f))
        (Sys.readdir path);
      (try Unix.rmdir path with Unix.Unix_error _ -> ())
  | false -> ( try Sys.remove path with Sys_error _ -> ())

let with_temp_dir tag f =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "vp-test-%s-%d" tag (Unix.getpid ()))
  in
  remove_tree dir;
  Fun.protect ~finally:(fun () -> remove_tree dir) (fun () -> f dir)

(* Port allocation, the race-free way: every server in the tree can
   bind port 0 and report the port the kernel actually gave it
   ([Daemon.create ~port:0] + [Daemon.port], same for the router), so
   tests NEVER pick a number and hope it is still free by the time the
   server binds it. [with_daemon] below is that pattern packaged.

   [ephemeral_port] is for the one legitimate exception — a test that
   must know a port BEFORE the server exists (e.g. restarting a daemon
   on the address a previous life owned). It still asks the kernel
   (bind 0, read back the name) rather than guessing from a range, and
   the server that reuses it binds with SO_REUSEADDR, so the window
   between close and re-bind does not 50/50 the suite the way a
   hardcoded port shared across parallel test runners would. *)
let ephemeral_port () =
  let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.setsockopt fd Unix.SO_REUSEADDR true;
      Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
      match Unix.getsockname fd with
      | Unix.ADDR_INET (_, port) -> port
      | _ -> assert false)

let with_daemon ?(jobs = 2) ?(max_pending = 64) ?data_dir f =
  let d = Vp_server.Daemon.create ~port:0 ~jobs ~max_pending ?data_dir () in
  let server = Domain.spawn (fun () -> Vp_server.Daemon.serve d) in
  Fun.protect
    ~finally:(fun () ->
      Vp_server.Daemon.stop d;
      Domain.join server)
    (fun () -> f (Vp_server.Daemon.port d))

let with_client port f =
  let c = Vp_client.Client.create ~port () in
  Fun.protect ~finally:(fun () -> Vp_client.Client.close c) (fun () -> f c)

(* --- raw-socket fuzz helpers: hostile bytes, not the typed client --- *)

let connect_raw port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  fd

let send_raw fd s =
  let len = String.length s in
  let rec go off =
    if off < len then go (off + Unix.write_substring fd s off (len - off))
  in
  go 0

let read_reply fd =
  let buf = Buffer.create 256 in
  let chunk = Bytes.create 1024 in
  let rec go () =
    match Unix.read fd chunk 0 1024 with
    | 0 -> Alcotest.fail "server closed the connection instead of replying"
    | n ->
        let stop = ref None in
        for i = 0 to n - 1 do
          if !stop = None && Bytes.get chunk i = '\n' then stop := Some i
        done;
        (match !stop with
        | Some i -> Buffer.add_subbytes buf chunk 0 i
        | None ->
            Buffer.add_subbytes buf chunk 0 n;
            go ())
  in
  go ();
  match Vp_observe.Json.of_string (Buffer.contents buf) with
  | Ok doc -> doc
  | Error msg -> Alcotest.failf "unparseable reply: %s" msg

let expect_error fd what frame =
  send_raw fd frame;
  let reply = read_reply fd in
  Alcotest.(check string)
    (what ^ " answered with a clean error")
    "error"
    (Vp_server.Protocol.reply_status reply);
  match Vp_server.Protocol.reply_error reply with
  | Some msg ->
      Alcotest.(check bool) (what ^ " error is descriptive") true (msg <> "")
  | None -> Alcotest.failf "%s: error reply without a message" what
