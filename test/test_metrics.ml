open Vp_core

let disk = Vp_cost.Disk.default

let w = Testutil.partsupp_workload

let n = 5

let paper_layout =
  (* The intro's P1(PartKey,SuppKey) P2(AvailQty,SupplyCost) P3(Comment). *)
  Partitioning.of_names Testutil.partsupp
    [ [ "PartKey"; "SuppKey" ]; [ "AvailQty"; "SupplyCost" ]; [ "Comment" ] ]

let test_unnecessary_zero_for_exact_layout () =
  (* Every partition read by a query contains only referenced attributes. *)
  Alcotest.(check (float 1e-12)) "no waste" 0.0
    (Vp_metrics.Measures.unnecessary_data_read disk w paper_layout)

let test_unnecessary_for_row () =
  (* Row: Q1 reads 219 needs 20, Q2 reads 219 needs 215 (wait: AvailQty 4 +
     SupplyCost 8 + Comment 199 = 211). Read = 438, needed = 20 + 211. *)
  let expected = (438.0 -. 231.0) /. 438.0 in
  Alcotest.(check (float 1e-9)) "row waste" expected
    (Vp_metrics.Measures.unnecessary_data_read disk w (Partitioning.row n))

let test_joins () =
  (* Q1 touches P1,P2 (1 join); Q2 touches P2,P3 (1 join). *)
  Alcotest.(check (float 1e-12)) "avg joins" 1.0
    (Vp_metrics.Measures.avg_tuple_reconstruction_joins w paper_layout);
  Alcotest.(check (float 1e-12)) "row joins" 0.0
    (Vp_metrics.Measures.avg_tuple_reconstruction_joins w (Partitioning.row n));
  (* Column: Q1 touches 4 (3 joins), Q2 touches 3 (2 joins) -> 2.5. *)
  Alcotest.(check (float 1e-12)) "column joins" 2.5
    (Vp_metrics.Measures.avg_tuple_reconstruction_joins w (Partitioning.column n))

let test_improvement_formulas () =
  Alcotest.(check (float 1e-12)) "identity" 0.0
    (Vp_metrics.Measures.improvement_over disk w
       ~baseline:paper_layout paper_layout);
  let v = Vp_metrics.Measures.improvement_over disk w
      ~baseline:(Partitioning.row n) paper_layout
  in
  Alcotest.(check bool) "positive vs row" true (v > 0.0);
  Alcotest.(check (float 1e-12)) "of_costs" 0.25
    (Vp_metrics.Measures.improvement_of_costs ~baseline:4.0 3.0)

let test_distance_from_pmv_nonnegative () =
  List.iter
    (fun p ->
      Alcotest.(check bool) "pmv below" true
        (Vp_metrics.Measures.distance_from_pmv disk w p >= -1e-9))
    [ paper_layout; Partitioning.row n; Partitioning.column n ]

let test_fragility_zero_same_disk () =
  Alcotest.(check (float 1e-12)) "no change" 0.0
    (Vp_metrics.Fragility.fragility ~old_disk:disk ~new_disk:disk w paper_layout)

let test_fragility_small_buffer_hurts () =
  let tiny = Vp_cost.Disk.with_buffer_size disk (Vp_cost.Disk.mb 0.08) in
  Alcotest.(check bool) "positive fragility" true
    (Vp_metrics.Fragility.fragility ~old_disk:disk ~new_disk:tiny w paper_layout
    > 0.0)

let test_fragility_aggregate_matches_single () =
  let tiny = Vp_cost.Disk.with_buffer_size disk (Vp_cost.Disk.mb 0.8) in
  Alcotest.(check (Testutil.close ~eps:1e-12 ()))
    "aggregate of one"
    (Vp_metrics.Fragility.fragility ~old_disk:disk ~new_disk:tiny w paper_layout)
    (Vp_metrics.Fragility.aggregate ~old_disk:disk ~new_disk:tiny
       [ (w, paper_layout) ])

let test_payoff () =
  let p =
    Vp_metrics.Payoff.compute disk w ~optimization_time:0.001
      ~baseline:(Partitioning.row n) paper_layout
  in
  Alcotest.(check bool) "creation positive" true (p.creation_time > 0.0);
  Alcotest.(check bool) "improves" true (p.improvement > 0.0);
  Alcotest.(check bool) "factor positive" true (p.factor > 0.0);
  (* Against itself: no improvement -> infinite pay-off. *)
  let same =
    Vp_metrics.Payoff.compute disk w ~optimization_time:0.001
      ~baseline:paper_layout paper_layout
  in
  Alcotest.(check bool) "never pays off" true (same.factor = infinity)

let test_payoff_negative_when_worse () =
  let p =
    Vp_metrics.Payoff.compute disk w ~optimization_time:0.001
      ~baseline:paper_layout (Partitioning.row n)
  in
  Alcotest.(check bool) "negative factor" true (p.factor < 0.0)

let test_aggregate_totals () =
  let entries =
    [
      { Vp_metrics.Measures.Aggregate.workload = w; partitioning = paper_layout };
      {
        Vp_metrics.Measures.Aggregate.workload = w;
        partitioning = Partitioning.row n;
      };
    ]
  in
  let total = Vp_metrics.Measures.Aggregate.total_cost disk entries in
  Alcotest.(check (Testutil.close ~eps:1e-9 ()))
    "sum of parts"
    (Vp_metrics.Measures.workload_cost disk w paper_layout
    +. Vp_metrics.Measures.workload_cost disk w (Partitioning.row n))
    total

(* --- property coverage of the metric edge cases --- *)

let gen_workload_and_partitioning =
  QCheck2.Gen.(
    let* w = Testutil.gen_workload 6 4 in
    let* p = Testutil.gen_partitioning 6 in
    return (w, p))

let prop_fragility_zero_when_disk_unchanged =
  QCheck2.Test.make ~count:100
    ~name:"fragility = 0 when the disk does not change"
    gen_workload_and_partitioning
    (fun (w, p) ->
      Vp_metrics.Fragility.fragility ~old_disk:disk ~new_disk:disk w p = 0.0)

let prop_unnecessary_within_unit_interval =
  QCheck2.Test.make ~count:100
    ~name:"unnecessary_data_read stays within [0, 1]"
    gen_workload_and_partitioning
    (fun (w, p) ->
      let v = Vp_metrics.Measures.unnecessary_data_read disk w p in
      v >= 0.0 && v <= 1.0)

(* A per-query PMV layout — the query's referenced attributes in one
   group, everything else in another — reads no unreferenced byte, so
   its waste is exactly 0, not merely close to it. *)
let prop_pmv_layout_reads_nothing_unnecessary =
  QCheck2.Test.make ~count:100
    ~name:"unnecessary_data_read = 0 on per-query PMV layouts"
    (Testutil.gen_workload 6 4)
    (fun w ->
      let table = Vp_core.Workload.table w in
      let n_attrs = Vp_core.Table.attribute_count table in
      Array.for_all
        (fun q ->
          let refs = Vp_core.Query.references q in
          let rest = Vp_core.Attr_set.diff (Vp_core.Attr_set.full n_attrs) refs in
          let groups =
            if Vp_core.Attr_set.is_empty rest then [ refs ] else [ refs; rest ]
          in
          let pmv = Vp_core.Partitioning.of_groups ~n:n_attrs groups in
          let single = Vp_core.Workload.make table [ q ] in
          Vp_metrics.Measures.unnecessary_data_read disk single pmv = 0.0)
        (Vp_core.Workload.queries w))

let test_distance_from_pmv_all_algorithms_tpch () =
  (* Every layout costs at least the per-materialized-view lower bound:
     the distance is non-negative for all seven algorithms on all of
     TPC-H, not just for the hand-picked layouts above. *)
  List.iter
    (fun w ->
      let oracle = Vp_cost.Io_model.oracle disk w in
      List.iter
        (fun (a : Vp_core.Partitioner.t) ->
          let r = Vp_core.Partitioner.exec a (Vp_core.Partitioner.Request.make ~cost:oracle w) in
          let d =
            Vp_metrics.Measures.distance_from_pmv disk w
              r.Vp_core.Partitioner.Response.partitioning
          in
          Alcotest.(check bool)
            (Printf.sprintf "%s >= PMV on %s" a.Vp_core.Partitioner.name
               (Vp_core.Table.name (Vp_core.Workload.table w)))
            true (d >= -1e-9))
        (Vp_algorithms.Registry.six @ Vp_algorithms.Registry.baselines))
    (Vp_benchmarks.Tpch.workloads ~sf:10.0)

let suite =
  [
    Alcotest.test_case "unnecessary: exact layout" `Quick
      test_unnecessary_zero_for_exact_layout;
    Alcotest.test_case "unnecessary: row" `Quick test_unnecessary_for_row;
    Alcotest.test_case "joins" `Quick test_joins;
    Alcotest.test_case "improvement formulas" `Quick test_improvement_formulas;
    Alcotest.test_case "distance from PMV" `Quick test_distance_from_pmv_nonnegative;
    Alcotest.test_case "fragility same disk" `Quick test_fragility_zero_same_disk;
    Alcotest.test_case "fragility small buffer" `Quick
      test_fragility_small_buffer_hurts;
    Alcotest.test_case "fragility aggregate" `Quick
      test_fragility_aggregate_matches_single;
    Alcotest.test_case "payoff" `Quick test_payoff;
    Alcotest.test_case "payoff negative" `Quick test_payoff_negative_when_worse;
    Alcotest.test_case "aggregate totals" `Quick test_aggregate_totals;
    Testutil.qtest prop_fragility_zero_when_disk_unchanged;
    Testutil.qtest prop_unnecessary_within_unit_interval;
    Testutil.qtest prop_pmv_layout_reads_nothing_unnecessary;
    Alcotest.test_case "distance from PMV: all algorithms, TPC-H" `Quick
      test_distance_from_pmv_all_algorithms_tpch;
  ]
