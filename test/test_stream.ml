(* The streaming substrate: chunk determinism (any fetch order, any
   chunk size, any pool width), streamed-vs-materialized identity
   through the storage simulator (digests, build accounting, per-query
   device stats — byte for byte, including the virtual executor), the
   bounded-working-set guarantee, per-partition format selection and the
   online service's format re-pick determinism. *)

open Vp_core
module Source = Vp_stream.Source
module Format = Vp_storage.Format
module Service = Vp_online.Service

let disk =
  Vp_cost.Disk.make ~block_size:4096 ~buffer_size:(Vp_cost.Disk.mb 0.25) ()

let gen = Vp_datagen.Rowgen.create ()

let customer = Vp_benchmarks.Tpch.table ~sf:0.01 "customer"

let customer_rows = lazy (Vp_datagen.Rowgen.rows gen customer)

let customer_workload = Vp_benchmarks.Tpch.workload ~sf:0.01 "customer"

(* --- chunk determinism --- *)

let test_chunks_concat_to_rows () =
  (* Concatenating iter_chunks output is byte-identical to rows, with a
     chunk size that forces several chunks and a short tail. *)
  let rows = Lazy.force customer_rows in
  let got = ref [] in
  Vp_datagen.Rowgen.iter_chunks ~chunk_rows:64 gen customer
    (fun ~first_row chunk ->
      Alcotest.(check int)
        "first_row tracks position" (64 * List.length !got) first_row;
      got := chunk :: !got);
  let concat = Array.concat (List.rev !got) in
  Alcotest.(check int) "row count" (Array.length rows) (Array.length concat);
  Alcotest.(check bool) "rows identical" true
    (Array.for_all2
       (fun a b -> Array.for_all2 Value.equal a b)
       rows concat)

let test_chunk_fetch_order_free () =
  (* chunk s i depends only on i — never on which chunks were fetched
     before or in what order. *)
  let s = Source.of_rowgen ~chunk_rows:100 gen customer in
  let n = Source.chunk_count s in
  let forward = List.init n (Source.chunk s) in
  let s2 = Source.of_rowgen ~chunk_rows:100 gen customer in
  let backward =
    List.rev (List.rev_map (Source.chunk s2) (List.init n Fun.id))
  in
  Alcotest.(check bool) "any fetch order, same chunks" true (forward = backward);
  (* Re-fetching after other fetches is also stable. *)
  Alcotest.(check bool) "re-fetch stable" true
    (Source.chunk s 0 = List.hd forward)

let prop_chunking_invariant =
  QCheck2.Test.make ~name:"any chunk size concatenates to the same rows"
    ~count:30
    QCheck2.Gen.(int_range 1 400)
    (fun chunk_rows ->
      let s = Source.of_rowgen ~chunk_rows gen customer in
      let rows = Lazy.force customer_rows in
      Source.row_count s = Array.length rows
      && Array.for_all2
           (fun a b -> Array.for_all2 Value.equal a b)
           (Source.materialize s) rows)

let test_digest_jobs_invariant () =
  let s () = Source.of_rowgen ~chunk_rows:128 gen customer in
  let at jobs =
    Vp_parallel.Pool.with_pool ~jobs @@ fun pool ->
    Source.digest ~pool (s ())
  in
  let sequential = Source.digest (s ()) in
  Alcotest.(check int) "jobs 1 = sequential" sequential (at 1);
  Alcotest.(check int) "jobs 4 = sequential" sequential (at 4)

let test_digest_streamed_vs_materialized () =
  let streamed = Source.of_rowgen ~chunk_rows:128 gen customer in
  let materialized =
    Source.of_rows ~chunk_rows:128 customer (Lazy.force customer_rows)
  in
  Alcotest.(check int) "same digest" (Source.digest streamed)
    (Source.digest materialized)

(* --- streamed vs materialized through the storage simulator --- *)

let layout () = Partitioning.column (Table.attribute_count customer)

let test_build_streamed_vs_materialized () =
  (* Building from the generator stream and from the materialized rows
     must agree exactly: load accounting, bytes on disk, and every
     query's device stats, CPU and checksum. *)
  let streamed = Source.of_rowgen gen customer in
  let materialized = Source.of_rows customer (Lazy.force customer_rows) in
  let build source =
    Vp_storage.Database.build ~disk ~codec:Vp_storage.Codec.Plain customer
      source (layout ())
  in
  let db_s = build streamed and db_m = build materialized in
  Alcotest.(check bool) "load stats identical" true
    (Vp_storage.Database.load_stats db_s
    = Vp_storage.Database.load_stats db_m);
  Alcotest.(check int) "bytes on disk"
    (Vp_storage.Database.bytes_on_disk db_m)
    (Vp_storage.Database.bytes_on_disk db_s);
  Array.iter
    (fun q ->
      let a = Vp_storage.Database.run_query db_s q in
      let b = Vp_storage.Database.run_query db_m q in
      Alcotest.(check bool)
        (Printf.sprintf "query %s identical" (Query.name q))
        true (a = b))
    (Workload.queries customer_workload)

let test_virtual_vs_materialized_io () =
  (* The accounting-only build replays the materialized scan's refill
     schedule bit for bit — for every codec kind, including the
     variable-stride one (whose virtual path needs a width pass and
     explicit block row-maps). *)
  let groups = Partitioning.groups (layout ()) in
  let formats =
    List.mapi
      (fun i _ ->
        match i mod 3 with
        | 0 -> Vp_storage.Codec.Plain
        | 1 -> Vp_storage.Codec.Dictionary
        | _ -> Vp_storage.Codec.Varlen)
      groups
  in
  let build retain source =
    Vp_storage.Database.build ~retain ~disk ~codec:Vp_storage.Codec.Plain
      ~formats customer source (layout ())
  in
  let db_v = build false (Source.of_rowgen gen customer) in
  let db_m =
    build true (Source.of_rows customer (Lazy.force customer_rows))
  in
  Alcotest.(check bool) "load stats identical" true
    (Vp_storage.Database.load_stats db_v
    = Vp_storage.Database.load_stats db_m);
  Array.iter
    (fun q ->
      let v = Vp_storage.Database.run_query db_v q in
      let m = Vp_storage.Database.run_query db_m q in
      Alcotest.(check bool)
        (Printf.sprintf "%s: io bit-identical" (Query.name q))
        true
        (v.Vp_storage.Database.io = m.Vp_storage.Database.io);
      Alcotest.(check int)
        (Printf.sprintf "%s: values accounted" (Query.name q))
        m.Vp_storage.Database.values_decoded
        v.Vp_storage.Database.values_decoded;
      Alcotest.(check int)
        (Printf.sprintf "%s: rows out" (Query.name q))
        m.Vp_storage.Database.rows_out v.Vp_storage.Database.rows_out;
      Alcotest.(check int)
        (Printf.sprintf "%s: virtual checksum" (Query.name q))
        0 v.Vp_storage.Database.checksum;
      Alcotest.(check (Testutil.close ~eps:1e-9 ()))
        (Printf.sprintf "%s: cpu seconds" (Query.name q))
        m.Vp_storage.Database.cpu_seconds v.Vp_storage.Database.cpu_seconds)
    (Workload.queries customer_workload)

let test_streaming_bounded_heap () =
  (* Streaming many more rows than the chunk size must not grow the
     major heap by anything near the materialized table's footprint: the
     working set is one chunk (plus pool slack), not the stream. *)
  let table =
    Table.make ~name:"wide_stream"
      ~attributes:
        (List.init 8 (fun i ->
             Attribute.make (Printf.sprintf "a%d" i) (Attribute.Varchar 32)))
      ~row_count:120_000
  in
  let s = Source.of_rowgen ~chunk_rows:2_000 gen table in
  let before = (Gc.quick_stat ()).Gc.top_heap_words in
  let rows = ref 0 in
  Source.iter s (fun ~first_row:_ c -> rows := !rows + Array.length c);
  let after = (Gc.quick_stat ()).Gc.top_heap_words in
  Alcotest.(check int) "streamed everything" 120_000 !rows;
  let delta_mb =
    float_of_int ((after - before) * (Sys.word_size / 8))
    /. (1024.0 *. 1024.0)
  in
  (* 120k rows x 8 strings materialize to tens of MB; the stream must
     stay an order of magnitude under that. *)
  Alcotest.(check bool)
    (Printf.sprintf "heap delta %.1f MiB bounded" delta_mb)
    true (delta_mb < 8.0)

(* --- per-partition format selection --- *)

let test_sample_stats_exact () =
  let table =
    Table.make ~name:"stats"
      ~attributes:
        [
          Attribute.make "id" Attribute.Int32;
          Attribute.make "tag" (Attribute.Varchar 16);
        ]
      ~row_count:90
  in
  let rows =
    Array.init 90 (fun i ->
        [| Value.Int i; Value.Str (Printf.sprintf "tag%d" (i mod 7)) |])
  in
  let stats = Format.sample_stats (Source.of_rows ~chunk_rows:32 table rows) in
  Alcotest.(check int) "numeric distinct unused" 0 stats.(0).Format.distinct;
  Alcotest.(check int) "string distinct exact" 7 stats.(1).Format.distinct;
  Alcotest.(check (Testutil.close ~eps:1e-9 ()))
    "avg string length" 4.0 stats.(1).Format.avg_len

let test_choose_never_worse_than_plain () =
  List.iter
    (fun w ->
      let table = Workload.table w in
      let layout = Partitioning.column (Table.attribute_count table) in
      let stats = Format.schema_stats table in
      let chosen = Format.choose disk table w layout stats in
      let plain = Format.plain table layout in
      let c_chosen = Format.scan_cost disk table w layout chosen in
      let c_plain = Format.scan_cost disk table w layout plain in
      Alcotest.(check bool)
        (Printf.sprintf "%s: chosen <= plain" (Table.name table))
        true
        (c_chosen <= c_plain +. 1e-9))
    (Vp_benchmarks.Tpch.workloads ~sf:0.1)

let test_choose_dictionary_for_low_cardinality () =
  (* A wide, low-cardinality string column is the dictionary codec's
     home turf: 2-byte codes against a 64-byte plain slot. *)
  let table =
    Table.make ~name:"dict_win"
      ~attributes:
        [
          Attribute.make "k" Attribute.Int32;
          Attribute.make "status" (Attribute.Varchar 64);
        ]
      ~row_count:50_000
  in
  let layout = Partitioning.column 2 in
  let w =
    Workload.make table
      [
        Query.make ~name:"scan_status"
          ~references:(Table.attr_set_of_names table [ "status" ])
          ();
      ]
  in
  let chosen = Format.choose disk table w layout (Format.schema_stats table) in
  let status_kind = List.nth (Format.kinds chosen) 1 in
  Alcotest.(check bool) "dictionary chosen for the string column" true
    (status_kind = Vp_storage.Codec.Dictionary)

let test_sized_cost_matches_groups () =
  (* query_cost_sized with schema widths coincides bit for bit with
     query_cost_groups — the sized model is a strict generalization. *)
  let table = customer in
  let layout = layout () in
  Array.iter
    (fun q ->
      let refs = Query.references q in
      let referenced =
        List.filter
          (fun g -> Attr_set.intersects g refs)
          (Partitioning.groups layout)
      in
      let by_groups = Vp_cost.Io_model.query_cost_groups disk table referenced in
      let by_sizes =
        Vp_cost.Io_model.query_cost_sized disk ~rows:(Table.row_count table)
          (List.map (Table.subset_size table) referenced)
      in
      Alcotest.(check (float 0.0))
        (Printf.sprintf "%s: sized = groups" (Query.name q))
        by_groups by_sizes)
    (Workload.queries customer_workload)

let test_format_of_kinds_roundtrip () =
  let table = customer in
  let stats = Format.schema_stats table in
  let layout = layout () in
  let chosen = Format.choose disk table customer_workload layout stats in
  let rebuilt = Format.of_kinds table stats layout (Format.kinds chosen) in
  Alcotest.(check bool) "kinds -> of_kinds round-trips" true
    (Format.equal chosen rebuilt)

let test_migration_cost_properties () =
  let table = customer in
  let stats = Format.schema_stats table in
  let layout = layout () in
  let plain = Format.plain table layout in
  let chosen = Format.choose disk table customer_workload layout stats in
  Alcotest.(check (float 0.0))
    "no change, no cost" 0.0
    (Format.migration_cost disk table plain plain);
  if not (Format.equal chosen plain) then
    Alcotest.(check bool) "changed fragments cost time" true
      (Format.migration_cost disk table plain chosen > 0.0)

(* --- the online service's format re-pick --- *)

let drift_stream =
  lazy
    (Vp_benchmarks.Synthetic.drift_workload ~seed:17L ~rows:50_000
       ~attributes:8 ~clusters:3 ~queries:120 ~scatter:0.05 ~drift_at:0.5 ())

let service_config ?(jobs = 1) ~formats () =
  let disk =
    Vp_cost.Disk.with_buffer_size Vp_cost.Disk.default (Vp_cost.Disk.mb 1.0)
  in
  Service.default_config ~drift_ratio:2.0 ~min_window:8 ~epoch:64 ~memory:32
    ~horizon:1.0 ~jobs ~formats ~disk
    ~panel:[ Vp_algorithms.Hillclimb.algorithm ]
    ()

let run_service ?(jobs = 1) ~formats () =
  let w = Lazy.force drift_stream in
  let svc = Service.create (service_config ~jobs ~formats ()) (Workload.table w) in
  Array.iter (Service.ingest svc) (Workload.queries w);
  svc

let test_online_formats_deterministic () =
  let a = run_service ~formats:true () in
  let b = run_service ~formats:true () in
  let c = run_service ~jobs:4 ~formats:true () in
  Alcotest.(check string)
    "byte-identical history across runs" (Service.history a)
    (Service.history b);
  Alcotest.(check string)
    "history independent of --jobs" (Service.history a) (Service.history c)

let test_online_formats_off_is_pure_layout_history () =
  (* The format re-pick reads layout decisions but never feeds back into
     them: with formats on, stripping the format lines must leave
     exactly the formats-off history. *)
  let on = run_service ~formats:true () in
  let off = run_service ~formats:false () in
  Alcotest.(check int) "formats off records no format events" 0
    (List.length (Service.format_events off));
  let layout_lines_of svc =
    String.concat ""
      (List.map
         (fun e -> Service.event_line e ^ "\n")
         (Service.events svc))
  in
  Alcotest.(check string) "layout decisions unaffected"
    (Service.history off) (layout_lines_of on);
  List.iter
    (fun (e : Service.format_event) ->
      (match e.Service.f_verdict with
      | Service.Adopted ->
          Alcotest.(check bool) "adopted re-picks improve" true
            (e.Service.f_cost_after < e.Service.f_cost_before)
      | Service.Rejected -> ());
      Alcotest.(check bool) "format vector parses non-empty" true
        (String.length e.Service.f_formats > 0))
    (Service.format_events on)

let test_online_formats_snapshot_roundtrip () =
  let w = Lazy.force drift_stream in
  let qs = Workload.queries w in
  let n = Array.length qs in
  let reference = run_service ~formats:true () in
  let expect = Service.history reference in
  let live = Service.create (service_config ~formats:true ()) (Workload.table w) in
  for k = 0 to n do
    if k mod 30 = 0 || k = n then begin
      let snap = Service.snapshot live in
      let restored =
        match Service.restore (service_config ~formats:true ()) snap with
        | Ok s -> s
        | Error msg -> Alcotest.failf "restore at boundary %d: %s" k msg
      in
      Alcotest.(check string)
        (Printf.sprintf "boundary %d: snapshot round-trips" k)
        snap
        (Service.snapshot restored);
      Alcotest.(check bool)
        (Printf.sprintf "boundary %d: formats restored" k)
        true
        (Format.equal (Service.formats live) (Service.formats restored));
      for i = k to n - 1 do
        Service.ingest restored qs.(i)
      done;
      Alcotest.(check string)
        (Printf.sprintf "boundary %d: history byte-identical" k)
        expect (Service.history restored)
    end;
    if k < n then Service.ingest live qs.(k)
  done

let suite =
  [
    Alcotest.test_case "chunks concat to rows" `Quick test_chunks_concat_to_rows;
    Alcotest.test_case "chunk fetch order free" `Quick
      test_chunk_fetch_order_free;
    Alcotest.test_case "digest jobs invariant" `Quick test_digest_jobs_invariant;
    Alcotest.test_case "digest streamed = materialized" `Quick
      test_digest_streamed_vs_materialized;
    Alcotest.test_case "build streamed = materialized" `Quick
      test_build_streamed_vs_materialized;
    Alcotest.test_case "virtual io = materialized io" `Quick
      test_virtual_vs_materialized_io;
    Alcotest.test_case "streaming bounded heap" `Quick
      test_streaming_bounded_heap;
    Alcotest.test_case "sample stats exact" `Quick test_sample_stats_exact;
    Alcotest.test_case "choose never worse than plain" `Quick
      test_choose_never_worse_than_plain;
    Alcotest.test_case "dictionary for low cardinality" `Quick
      test_choose_dictionary_for_low_cardinality;
    Alcotest.test_case "sized cost = group cost" `Quick
      test_sized_cost_matches_groups;
    Alcotest.test_case "format of_kinds roundtrip" `Quick
      test_format_of_kinds_roundtrip;
    Alcotest.test_case "migration cost properties" `Quick
      test_migration_cost_properties;
    Alcotest.test_case "online formats deterministic" `Quick
      test_online_formats_deterministic;
    Alcotest.test_case "formats off = pure layout history" `Quick
      test_online_formats_off_is_pure_layout_history;
    Alcotest.test_case "formats snapshot roundtrip" `Quick
      test_online_formats_snapshot_roundtrip;
    Testutil.qtest prop_chunking_invariant;
  ]
