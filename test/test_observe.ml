(* The observability layer's own contract: lock-free counters whose
   per-domain cells merge to the same total under any split of the work,
   monotone histogram quantiles, a JSON printer/parser that round-trips,
   spans that survive pool fan-out, and — the whole point — probes that
   are inert below their switch level. *)

module Switch = Vp_observe.Switch
module Stats = Vp_observe.Stats
module Trace = Vp_observe.Trace
module Json = Vp_observe.Json

(* Metrics are process-global and other suites touch the wired-in ones,
   so every check here is on a delta or on a test-private metric name. *)
let delta name f =
  let before = Stats.counter_value (Stats.snapshot ()) name in
  f ();
  Stats.counter_value (Stats.snapshot ()) name - before

(* --- counters, gauges, histograms --- *)

let test_counter_basics () =
  let c = Stats.counter "test.obs.basic" in
  let d =
    delta "test.obs.basic" (fun () ->
        Stats.incr c;
        Stats.incr c;
        Stats.add c 5;
        Stats.add c 0)
  in
  Alcotest.(check int) "2 incr + add 5 + add 0" 7 d

let test_counter_add_negative_rejected () =
  let c = Stats.counter "test.obs.negative" in
  Alcotest.check_raises "negative increment"
    (Invalid_argument "Stats.add: negative increment") (fun () ->
      Stats.add c (-1))

let test_kind_mismatch_rejected () =
  ignore (Stats.counter "test.obs.kind");
  Alcotest.check_raises "counter reused as gauge"
    (Invalid_argument "Stats.gauge: \"test.obs.kind\" is already a counter")
    (fun () -> ignore (Stats.gauge "test.obs.kind"))

let test_gauge_last_write_wins () =
  let g = Stats.gauge "test.obs.gauge" in
  Stats.set_gauge g 3;
  Stats.set_gauge g 7;
  let snap = Stats.snapshot () in
  Alcotest.(check int) "last set value" 7
    (match List.assoc_opt "test.obs.gauge" snap.Stats.gauges with
    | Some v -> v
    | None -> Alcotest.fail "gauge missing from snapshot")

let test_histogram_summary () =
  let h = Stats.histogram "test.obs.hist" in
  List.iter (Stats.observe h) [ 0.5; 1.0; 2.0; 4.0; -1.0 ];
  let snap = Stats.snapshot () in
  let s =
    match List.assoc_opt "test.obs.hist" snap.Stats.histograms with
    | Some s -> s
    | None -> Alcotest.fail "histogram missing from snapshot"
  in
  Alcotest.(check int) "count" 5 s.Stats.count;
  Alcotest.(check (float 1e-9)) "sum" 6.5 s.Stats.sum;
  (* Bucket representatives are upper bounds: 0.5 -> 1, 1 -> 2, 2 -> 4,
     4 -> 8, and the negative observation lands in bucket 0. *)
  Alcotest.(check (float 0.0)) "p0 is the non-positive bucket" 0.0
    (Stats.quantile s 0.0);
  Alcotest.(check (float 0.0)) "median (rank 3 of 5)" 2.0
    (Stats.quantile s 0.5);
  Alcotest.(check (float 0.0)) "max" 8.0 (Stats.quantile s 1.0)

let test_quantile_edges () =
  let empty = { Stats.count = 0; sum = 0.0; buckets = Array.make 64 0 } in
  Alcotest.(check (float 0.0)) "empty summary" 0.0 (Stats.quantile empty 0.5);
  let some = { Stats.count = 1; sum = 1.0; buckets = Array.make 64 0 } in
  List.iter
    (fun q ->
      Alcotest.check_raises
        (Printf.sprintf "q = %g rejected" q)
        (Invalid_argument "Stats.quantile: rank outside [0, 1]")
        (fun () -> ignore (Stats.quantile some q)))
    [ -0.1; 1.5; Float.nan ]

(* --- property: merging per-domain cells is split-invariant --- *)

(* Whatever way a multiset of increments is split across domains, the
   merged snapshot sums to the same total: the merge is associative and
   commutative. Each run scatters the increments over 3 spawned domains
   plus the main one. *)
let prop_counter_merge_split_invariant =
  QCheck2.Test.make ~count:50
    ~name:"counter merge: any split across domains sums the same"
    QCheck2.Gen.(pair (small_list (int_range 0 50)) (int_range 1 3))
    (fun (increments, splits) ->
      let c = Stats.counter "test.obs.merge" in
      let total = List.fold_left ( + ) 0 increments in
      let chunks = Array.make (splits + 1) [] in
      List.iteri
        (fun i n -> chunks.(i mod (splits + 1)) <- n :: chunks.(i mod (splits + 1)))
        increments;
      let observed =
        delta "test.obs.merge" (fun () ->
            (* chunk 0 on the main domain, the rest on spawned domains *)
            List.iter (Stats.add c) chunks.(0);
            Array.sub chunks 1 splits
            |> Array.map (fun chunk ->
                   Domain.spawn (fun () -> List.iter (Stats.add c) chunk))
            |> Array.iter Domain.join)
      in
      observed = total)

(* --- property: histogram quantiles are monotone in rank --- *)

let prop_quantile_monotone =
  QCheck2.Test.make ~count:200 ~name:"histogram quantile monotone in rank"
    QCheck2.Gen.(
      triple
        (array_size (return 64) (int_range 0 20))
        (float_range 0.0 1.0) (float_range 0.0 1.0))
    (fun (buckets, q1, q2) ->
      let count = Array.fold_left ( + ) 0 buckets in
      let s = { Stats.count; sum = 0.0; buckets } in
      let lo = Float.min q1 q2 and hi = Float.max q1 q2 in
      Stats.quantile s lo <= Stats.quantile s hi)

(* --- property: JSON printer/parser round-trip --- *)

(* %.12g keeps 12 significant digits, so normalise generated floats
   through the printed representation first; the normalised value then
   survives print -> parse exactly. *)
let gen_json =
  QCheck2.Gen.(
    let atom =
      oneof
        [
          return Json.Null;
          map (fun b -> Json.Bool b) bool;
          map (fun i -> Json.Int i) int;
          map
            (fun f ->
              let f = if Float.is_nan f then 0.0 else f in
              Json.Float (float_of_string (Printf.sprintf "%.12g" f)))
            (float_range (-1e9) 1e9);
          map (fun s -> Json.String s) (string_size (int_range 0 12));
        ]
    in
    let key = string_size ~gen:(char_range 'a' 'z') (int_range 0 6) in
    sized @@ fix (fun self n ->
        if n <= 0 then atom
        else
          oneof
            [
              atom;
              map (fun l -> Json.List l) (list_size (int_range 0 4) (self (n / 2)));
              map
                (fun l -> Json.Obj l)
                (list_size (int_range 0 4) (pair key (self (n / 2))));
            ]))

let prop_json_roundtrip =
  QCheck2.Test.make ~count:300 ~name:"Json: of_string (to_string v) = v"
    gen_json (fun v ->
      Json.of_string (Json.to_string v) = Ok v
      && Json.of_string (Json.to_string ~pretty:true v) = Ok v)

(* --- the pool regression: ambient observability state crosses domains --- *)

let test_pool_counters_visible_in_main_snapshot () =
  Switch.with_level Switch.Stats (fun () ->
      let c = Stats.counter "test.obs.pool" in
      let d =
        delta "test.obs.pool" (fun () ->
            Vp_parallel.Pool.with_pool ~jobs:4 (fun pool ->
                ignore
                  (Vp_parallel.Pool.run pool
                     (List.init 8 (fun _ () -> Stats.incr c)))))
      in
      Alcotest.(check int) "8 task increments merged into snapshot" 8 d)

let test_pool_tasks_counted () =
  Switch.with_level Switch.Stats (fun () ->
      let d =
        delta "pool.tasks_run" (fun () ->
            ignore (Vp_parallel.Pool.run_list ~jobs:2 (List.init 5 (fun i () -> i))))
      in
      Alcotest.(check int) "every batch task counted" 5 d)

let test_pool_spans_nest_under_submitter () =
  Switch.with_level Switch.Trace (fun () ->
      Trace.clear ();
      Vp_parallel.Pool.with_pool ~jobs:4 (fun pool ->
          Trace.with_span ~name:"submit" (fun () ->
              ignore
                (Vp_parallel.Pool.run pool
                   (List.init 6 (fun i () ->
                        Trace.with_span ~name:"leaf" (fun () -> i))))));
      let evs = Trace.events () in
      let find_all name =
        List.filter (fun (e : Trace.event) -> e.Trace.name = name) evs
      in
      let submit =
        match find_all "submit" with
        | [ e ] -> e
        | l -> Alcotest.failf "expected 1 submit span, got %d" (List.length l)
      in
      let tasks = find_all "pool:task" and leaves = find_all "leaf" in
      Alcotest.(check int) "6 task spans" 6 (List.length tasks);
      Alcotest.(check int) "6 leaf spans" 6 (List.length leaves);
      List.iter
        (fun (e : Trace.event) ->
          Alcotest.(check int)
            "task span is a child of the submitting span"
            submit.Trace.id e.Trace.parent)
        tasks;
      let task_ids = List.map (fun (e : Trace.event) -> e.Trace.id) tasks in
      List.iter
        (fun (e : Trace.event) ->
          Alcotest.(check bool)
            "leaf span is a child of its task span" true
            (List.mem e.Trace.parent task_ids))
        leaves)

(* --- the ring buffer sink --- *)

let test_ring_records_and_clears () =
  Switch.with_level Switch.Trace (fun () ->
      Trace.clear ();
      Trace.with_span ~name:"ok" (fun () -> ());
      (try Trace.with_span ~name:"boom" (fun () -> failwith "x")
       with Failure _ -> ());
      let names = List.map (fun (e : Trace.event) -> e.Trace.name) (Trace.events ()) in
      Alcotest.(check (list string))
        "both spans recorded, the raising one included" [ "ok"; "boom" ] names;
      Alcotest.(check int) "nothing overwritten" 0 (Trace.dropped ());
      Trace.clear ();
      Alcotest.(check int) "clear empties the sink" 0
        (List.length (Trace.events ())))

(* --- the switch: probes are inert when disabled --- *)

let test_disabled_probes_are_inert () =
  Switch.with_level Switch.Off (fun () ->
      Trace.clear ();
      let pool_d =
        delta "pool.tasks_run" (fun () ->
            Trace.with_span ~name:"invisible" (fun () ->
                ignore (Vp_parallel.Pool.run_list ~jobs:2 (List.init 4 (fun i () -> i)))))
      in
      Alcotest.(check int) "no pool counts below Stats" 0 pool_d;
      Alcotest.(check int) "no spans below Trace" 0
        (List.length (Trace.events ())))

let test_stats_level_has_no_spans () =
  Switch.with_level Switch.Stats (fun () ->
      Trace.clear ();
      Trace.with_span ~name:"invisible" (fun () -> ());
      Alcotest.(check int) "Stats level records no spans" 0
        (List.length (Trace.events ())))

let test_raise_to_never_lowers () =
  Switch.with_level Switch.Trace (fun () ->
      Switch.raise_to Switch.Stats;
      Alcotest.(check bool) "still tracing" true (Switch.trace_on ()));
  Switch.with_level Switch.Stats (fun () ->
      Switch.raise_to Switch.Trace;
      Alcotest.(check bool) "raised" true (Switch.trace_on ()))

let test_render_smoke () =
  let c = Stats.counter "test.obs.render" in
  Stats.incr c;
  let out = Stats.render (Stats.snapshot ()) in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "rendered table names the counter" true
    (contains out "test.obs.render")

(* Hostile-input bounds on the JSON parser: these are the server's first
   line of defence against malformed frames, so the errors must be
   descriptive, and legitimate input just inside each bound must still
   parse. *)
let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let test_json_depth_bound () =
  let nested n = String.concat "" [ String.make n '['; "1"; String.make n ']' ] in
  (match Json.of_string ~max_depth:8 (nested 8) with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "depth 8 under bound 8 should parse: %s" e);
  (match Json.of_string ~max_depth:8 (nested 9) with
  | Ok _ -> Alcotest.fail "depth 9 over bound 8 should be rejected"
  | Error e ->
      Alcotest.(check bool) "error names the bound" true
        (contains e "nesting depth exceeds the maximum of 8"));
  match Json.of_string (nested (Json.default_max_depth + 1)) with
  | Ok _ -> Alcotest.fail "default depth bound should apply"
  | Error _ -> ()

let test_json_size_bound () =
  let s = {|{"k":"value"}|} in
  (match Json.of_string ~max_size:(String.length s) s with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "input at the size bound should parse: %s" e);
  (match Json.of_string ~max_size:(String.length s - 1) s with
  | Ok _ -> Alcotest.fail "input over the size bound should be rejected"
  | Error e ->
      Alcotest.(check bool) "error names both sizes" true
        (contains e "13 bytes exceeds the 12-byte limit"));
  (* No [max_size] means no size bound at all. *)
  match Json.of_string (String.concat "" [ {|"|}; String.make 4096 'x'; {|"|} ]) with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "unbounded parse rejected: %s" e

let suite =
  [
    Alcotest.test_case "counter basics" `Quick test_counter_basics;
    Alcotest.test_case "negative add rejected" `Quick
      test_counter_add_negative_rejected;
    Alcotest.test_case "kind mismatch rejected" `Quick
      test_kind_mismatch_rejected;
    Alcotest.test_case "gauge last write wins" `Quick
      test_gauge_last_write_wins;
    Alcotest.test_case "histogram summary" `Quick test_histogram_summary;
    Alcotest.test_case "quantile edges" `Quick test_quantile_edges;
    Testutil.qtest prop_counter_merge_split_invariant;
    Testutil.qtest prop_quantile_monotone;
    Testutil.qtest prop_json_roundtrip;
    Alcotest.test_case "pool counters visible in main snapshot" `Quick
      test_pool_counters_visible_in_main_snapshot;
    Alcotest.test_case "pool tasks counted" `Quick test_pool_tasks_counted;
    Alcotest.test_case "pool spans nest under submitter" `Quick
      test_pool_spans_nest_under_submitter;
    Alcotest.test_case "ring buffer records and clears" `Quick
      test_ring_records_and_clears;
    Alcotest.test_case "disabled probes inert" `Quick
      test_disabled_probes_are_inert;
    Alcotest.test_case "stats level has no spans" `Quick
      test_stats_level_has_no_spans;
    Alcotest.test_case "raise_to never lowers" `Quick
      test_raise_to_never_lowers;
    Alcotest.test_case "render smoke" `Quick test_render_smoke;
    Alcotest.test_case "json depth bound" `Quick test_json_depth_bound;
    Alcotest.test_case "json size bound" `Quick test_json_size_bound;
  ]
