(* The sharded layout cluster: consistent-hash ring, router, cross-shard
   handoff and shard supervision.

   The acceptance tests here are differential:

   - [cluster matches single daemon]: concurrent drift streams replayed
     through a 3-shard cluster must end with decision histories
     byte-identical to the same streams through one plain daemon AND to
     a sequential in-process [Vp_online.Replay].
   - [handoff identity]: a session opened on shard A, its owner removed
     from the ring mid-stream (forcing a spill/move/adopt handoff), and
     the stream finished on shard B must still match the local replay.
   - [kill -9 recovery]: the owner shard killed outright mid-script;
     the supervisor restarts it, seq-idempotent retries resume the
     stream, and the history still matches.

   The ring properties the handoff protocol leans on (remove only
   remaps the victim's keys; add only moves keys onto the newcomer) are
   proved by qcheck, and the hash is pinned by golden values so
   placement is deterministic across processes — see [Vp_router.Ring].

   The fuzz test feeds the router the same hostile bytes the daemon
   fuzz test uses, plus the router-specific torture: a shard killed
   under it mid-conversation and clients vanishing mid-frame. The
   router must always answer frames with clean replies, never wedge,
   and never leak a session. *)

open Vp_core
module Json = Vp_observe.Json
module Protocol = Vp_server.Protocol
module Client = Vp_client.Client
module Ring = Vp_router.Ring
module Router = Vp_router.Router

let unwrap = Testutil.unwrap

let contains = Testutil.contains

let with_cluster ?(shards = 3) tag f =
  Testutil.with_temp_dir ("cluster-" ^ tag) (fun dir ->
      let r = Router.create ~port:0 ~shards ~shard_jobs:2 ~data_dir:dir () in
      let server = Domain.spawn (fun () -> Router.serve r) in
      Fun.protect
        ~finally:(fun () ->
          Router.stop r;
          Domain.join server)
        (fun () -> f r (Router.port r)))

(* --- the ring --- *)

(* The hash and a 3-shard placement, pinned: these exact values must
   hold in every process on every machine (FNV-1a + SplitMix64, no
   [Hashtbl.hash]), or cross-process routing silently breaks. *)
let test_ring_golden_pins () =
  List.iter
    (fun (key, expected) ->
      Alcotest.(check int64)
        (Printf.sprintf "hash64 %S" key)
        expected (Ring.hash64 key))
    [
      ("alpha", 0x774ce336ac9131e8L);
      ("bravo", 0xe92749922fffe0c2L);
      ("s0042", 0x8342a78ff8d92c77L);
      ("shard-0#0", 0xf921b31cc0d686a3L);
    ];
  let ring = Ring.make [ "shard-0"; "shard-1"; "shard-2" ] in
  List.iter
    (fun (key, owner) ->
      Alcotest.(check string)
        (Printf.sprintf "lookup %S" key)
        owner (Ring.lookup ring key))
    [
      ("alpha", "shard-1");
      ("bravo", "shard-2");
      ("charlie", "shard-2");
      ("delta", "shard-2");
      ("echo", "shard-1");
    ]

let test_ring_remap_bounded () =
  (* Adding a fourth shard to a 3-shard ring must move roughly a
     quarter of the keys and no more: over 1000 fixed keys the exact
     count is itself deterministic (pinned), and well under the bound a
     naive [hash mod n] scheme would blow through (~750). *)
  let ring3 = Ring.make [ "shard-0"; "shard-1"; "shard-2" ] in
  let ring4 = Ring.add ring3 "shard-3" in
  let keys = List.init 1000 (Printf.sprintf "s%04d") in
  let moved =
    List.length
      (List.filter (fun k -> Ring.lookup ring3 k <> Ring.lookup ring4 k) keys)
  in
  Alcotest.(check int) "exact remap count is deterministic" 290 moved;
  Alcotest.(check bool)
    (Printf.sprintf "remap fraction %.2f bounded" (float_of_int moved /. 1000.))
    true
    (moved > 0 && moved < 450);
  (* And every moved key landed on the newcomer. *)
  List.iter
    (fun k ->
      if Ring.lookup ring3 k <> Ring.lookup ring4 k then
        Alcotest.(check string)
          (Printf.sprintf "moved key %S went to the newcomer" k)
          "shard-3" (Ring.lookup ring4 k))
    keys

let gen_ids =
  QCheck2.Gen.(
    list_size (int_range 2 8)
      (map (fun n -> Printf.sprintf "n%d" (abs n mod 64)) int))

let gen_key = QCheck2.Gen.(map (fun n -> Printf.sprintf "k%d" n) int)

let prop_remove_only_remaps_victim =
  QCheck2.Test.make ~count:200
    ~name:"ring: removing a shard keeps every other key's owner"
    QCheck2.Gen.(pair gen_ids gen_key)
    (fun (ids, key) ->
      let ring = Ring.make ~replicas:16 ids in
      QCheck2.assume (Ring.size ring >= 2);
      let owner = Ring.lookup ring key in
      let victim =
        List.find (fun id -> id <> owner) (Ring.members ring)
      in
      String.equal owner (Ring.lookup (Ring.remove ring victim) key))

let prop_add_moves_only_to_newcomer =
  QCheck2.Test.make ~count:200
    ~name:"ring: adding a shard moves keys only onto it"
    QCheck2.Gen.(pair gen_ids gen_key)
    (fun (ids, key) ->
      let ring = Ring.make ~replicas:16 ids in
      let owner = Ring.lookup ring key in
      let after = Ring.lookup (Ring.add ring "zz-newcomer") key in
      String.equal after owner || String.equal after "zz-newcomer")

let prop_lookup_total_and_stable =
  QCheck2.Test.make ~count:200
    ~name:"ring: lookup is total, a member, and independent of id order"
    QCheck2.Gen.(pair gen_ids gen_key)
    (fun (ids, key) ->
      let ring = Ring.make ~replicas:16 ids in
      let owner = Ring.lookup ring key in
      List.mem owner (Ring.members ring)
      && String.equal owner (Ring.lookup (Ring.make ~replicas:16 (List.rev ids)) key))

(* --- the port discipline --- *)

let test_ephemeral_ports () =
  let p = Testutil.ephemeral_port () in
  Alcotest.(check bool)
    (Printf.sprintf "kernel-allocated port %d is non-privileged" p)
    true
    (p > 1024 && p < 65536);
  (* The allocated port is genuinely bindable by a server right after. *)
  let d = Vp_server.Daemon.create ~port:p ~jobs:1 () in
  let server = Domain.spawn (fun () -> Vp_server.Daemon.serve d) in
  Fun.protect
    ~finally:(fun () ->
      Vp_server.Daemon.stop d;
      Domain.join server)
    (fun () ->
      Alcotest.(check int) "daemon bound the allocated port" p
        (Vp_server.Daemon.port d);
      Testutil.with_client p (fun c ->
          Alcotest.(check int)
            "daemon answers on it" Protocol.protocol_version
            (unwrap (Client.ping c))))

(* --- routing basics --- *)

let small_table () =
  Workload.table
    (Vp_benchmarks.Synthetic.workload ~seed:3L ~rows:100_000 ~attributes:8
       ~clusters:3 ~queries:12 ~scatter:0.1 ())

let test_router_basics () =
  with_cluster "basics" (fun r port ->
      Alcotest.(check int) "three shards" 3 (Router.shard_count r);
      Testutil.with_client port (fun c ->
          let pong = unwrap (Client.server_stats c) in
          Alcotest.(check (option int))
            "no sessions anywhere" (Some 0)
            (Protocol.int_field "sessions" pong);
          Alcotest.(check int)
            "ping through the router" Protocol.protocol_version
            (unwrap (Client.ping c));
          (* Sessions land on ring-chosen shards; the aggregate view
             sees them all, wherever they live. *)
          let t = small_table () in
          List.iter
            (fun s ->
              ignore (unwrap (Client.open_session c ~session:s t)))
            [ "alpha"; "bravo"; "charlie" ];
          let stats = unwrap (Client.server_stats c) in
          Alcotest.(check (option int))
            "aggregate counts all sessions" (Some 3)
            (Protocol.int_field "sessions" stats);
          let located =
            unwrap
              (Client.request_retry c
                 (Json.Obj
                    [
                      ("op", Json.String "cluster_locate");
                      ("session", Json.String "alpha");
                    ]))
          in
          (match Protocol.string_field "shard" located with
          | Some id ->
              Alcotest.(check bool)
                (Printf.sprintf "locate names a shard (%s)" id)
                true
                (contains id "shard-")
          | None -> Alcotest.fail "cluster_locate without a shard field");
          (* The shard-management ops never cross the front door. *)
          List.iter
            (fun op ->
              match
                Client.request_retry c
                  (Json.Obj
                     [
                       ("op", Json.String op);
                       ("session", Json.String "alpha");
                     ])
              with
              | Ok reply ->
                  Alcotest.(check string)
                    (op ^ " is rejected") "error"
                    (Protocol.reply_status reply);
                  Alcotest.(check bool)
                    (op ^ " rejection is explained") true
                    (match Protocol.reply_error reply with
                    | Some msg -> contains msg "shard-internal"
                    | None -> false)
              | Error msg -> Alcotest.failf "%s request failed: %s" op msg)
            [ "detach"; "adopt" ];
          List.iter
            (fun s -> ignore (unwrap (Client.close_session c ~session:s)))
            [ "alpha"; "bravo"; "charlie" ]))

(* --- the determinism contract, sharded --- *)

let streams =
  lazy
    (List.init 3 (fun i ->
         Vp_benchmarks.Synthetic.drift_workload
           ~seed:(Int64.of_int (201 + i))
           ~attributes:8 ~clusters:3 ~rows:50_000 ~queries:40 ~scatter:0.05
           ~drift_at:0.5 ()))

let session_disk =
  Vp_cost.Disk.with_buffer_size Vp_cost.Disk.default (Vp_cost.Disk.mb 1.0)

let local_history w =
  let config =
    Vp_online.Service.default_config ~jobs:1 ~disk:session_disk
      ~panel:[ Vp_algorithms.Hillclimb.algorithm ]
      ()
  in
  (Vp_online.Replay.run ~config w).Vp_online.Replay.history

let expected_histories = lazy (List.map local_history (Lazy.force streams))

let replay_streams port =
  let worker i w () =
    Testutil.with_client port (fun c ->
        let session = Printf.sprintf "s%d" i in
        let table = Workload.table w in
        ignore (unwrap (Client.open_session ~buffer_mb:1.0 c ~session table));
        Array.iteri
          (fun j q ->
            ignore (unwrap (Client.ingest ~seq:(j + 1) c ~session table q)))
          (Workload.queries w);
        unwrap (Client.close_session c ~session))
  in
  List.map Domain.join
    (List.mapi (fun i w -> Domain.spawn (worker i w)) (Lazy.force streams))

let test_cluster_matches_single_daemon () =
  let single = Testutil.with_daemon ~jobs:4 replay_streams in
  let sharded = with_cluster "differential" (fun _r port -> replay_streams port) in
  List.iteri
    (fun i ((expected, single), sharded) ->
      Alcotest.(check string)
        (Printf.sprintf "stream %d: single daemon = local replay" i)
        expected single;
      Alcotest.(check string)
        (Printf.sprintf "stream %d: 3-shard cluster = single daemon" i)
        single sharded;
      Alcotest.(check bool)
        (Printf.sprintf "stream %d produced decisions" i)
        true
        (String.length sharded > 0))
    (List.combine
       (List.combine (Lazy.force expected_histories) single)
       sharded)

(* --- handoff --- *)

let locate c session =
  let reply =
    unwrap
      (Client.request_retry c
         (Json.Obj
            [
              ("op", Json.String "cluster_locate");
              ("session", Json.String session);
            ]))
  in
  match Protocol.string_field "shard" reply with
  | Some id -> id
  | None -> Alcotest.fail "cluster_locate reply without a shard"

let test_handoff_identity () =
  (* Open on whatever shard the ring picks, ingest half the stream,
     remove that shard from the ring — the session spills, its files
     move and the gaining shard adopts — then finish the stream and
     close. One history, two shards, zero divergence. *)
  let w = List.hd (Lazy.force streams) in
  let expected = List.hd (Lazy.force expected_histories) in
  let table = Workload.table w in
  let qs = Workload.queries w in
  let n = Array.length qs in
  with_cluster "handoff" (fun r port ->
      Testutil.with_client port (fun c ->
          let session = "s0" in
          ignore (unwrap (Client.open_session ~buffer_mb:1.0 c ~session table));
          for j = 0 to (n / 2) - 1 do
            ignore (unwrap (Client.ingest ~seq:(j + 1) c ~session table qs.(j)))
          done;
          let owner = locate c session in
          let reply =
            unwrap
              (Client.request_retry c
                 (Json.Obj
                    [
                      ("op", Json.String "cluster_remove");
                      ("shard", Json.String owner);
                    ]))
          in
          Alcotest.(check string)
            "cluster_remove ok" "ok"
            (Protocol.reply_status reply);
          Alcotest.(check bool)
            "the session moved" true
            (match Protocol.int_field "moved" reply with
            | Some moved -> moved >= 1
            | None -> false);
          Alcotest.(check (option int))
            "no handoff errors" (Some 0)
            (Protocol.int_field "handoff_errors" reply);
          Alcotest.(check int) "fleet shrank" 2 (Router.shard_count r);
          let new_owner = locate c session in
          Alcotest.(check bool)
            (Printf.sprintf "owner changed (%s -> %s)" owner new_owner)
            true
            (not (String.equal owner new_owner));
          for j = n / 2 to n - 1 do
            ignore (unwrap (Client.ingest ~seq:(j + 1) c ~session table qs.(j)))
          done;
          Alcotest.(check string)
            "history byte-identical across the handoff" expected
            (unwrap (Client.close_session c ~session))))

(* --- kill -9 and supervised recovery --- *)

let shard_pid c id =
  let info =
    unwrap (Client.request_retry c (Json.Obj [ ("op", Json.String "cluster_info") ]))
  in
  match Json.member "shards" info with
  | Some (Json.List shards) -> (
      match
        List.find_map
          (fun s ->
            match (Json.member "id" s, Json.member "pid" s) with
            | Some (Json.String sid), Some (Json.Int pid) when sid = id ->
                Some pid
            | _ -> None)
          shards
      with
      | Some pid -> pid
      | None -> Alcotest.failf "shard %s not in cluster_info" id)
  | _ -> Alcotest.fail "cluster_info without a shards list"

let restarts_of c =
  let info =
    unwrap (Client.request_retry c (Json.Obj [ ("op", Json.String "cluster_info") ]))
  in
  match Json.member "shards" info with
  | Some (Json.List shards) ->
      List.fold_left
        (fun acc s ->
          match Json.member "restarts" s with
          | Some (Json.Int n) -> acc + n
          | _ -> acc)
        0 shards
  | _ -> 0

(* Rides out the whole crash window: sheds while the shard is down
   (already retried inside the client) plus transport errors while the
   router notices the death, for up to ~10 s of restart latency. *)
let ingest_insistent c ~session table ~seq q =
  let rec go attempts =
    match Client.ingest ~seq c ~session table q with
    | Ok _ -> ()
    | Error msg when attempts > 1 ->
        Unix.sleepf 0.05;
        ignore msg;
        go (attempts - 1)
    | Error msg -> Alcotest.failf "ingest seq %d never recovered: %s" seq msg
  in
  go 200

let test_kill9_recovery () =
  let w = List.hd (Lazy.force streams) in
  let expected = List.hd (Lazy.force expected_histories) in
  let table = Workload.table w in
  let qs = Workload.queries w in
  let n = Array.length qs in
  with_cluster "kill9" (fun _r port ->
      Testutil.with_client port (fun c ->
          let session = "s0" in
          ignore (unwrap (Client.open_session ~buffer_mb:1.0 c ~session table));
          for j = 0 to (n / 2) - 1 do
            ignore (unwrap (Client.ingest ~seq:(j + 1) c ~session table qs.(j)))
          done;
          let owner = locate c session in
          let pid = shard_pid c owner in
          Unix.kill pid Sys.sigkill;
          (* The stream continues right through the crash: the WAL has
             the prefix, the restart recovers it, seq acks duplicates. *)
          for j = n / 2 to n - 1 do
            ingest_insistent c ~session table ~seq:(j + 1) qs.(j)
          done;
          Alcotest.(check string)
            "history byte-identical across kill -9" expected
            (unwrap (Client.close_session c ~session));
          Alcotest.(check bool)
            "supervisor logged a restart" true
            (restarts_of c >= 1);
          Alcotest.(check string)
            "session still routes to its owner" owner (locate c session)))

(* --- hostile input --- *)

let test_router_fuzz () =
  with_cluster "fuzz" (fun _r port ->
      let fd = Testutil.connect_raw port in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          Testutil.expect_error fd "empty frame" "\n";
          Testutil.expect_error fd "truncated JSON" "{\"op\": \"pi\n";
          Testutil.expect_error fd "non-JSON garbage" "!!! not json at all\n";
          Testutil.expect_error fd "non-object frame" "[1, 2, 3]\n";
          Testutil.expect_error fd "unknown op" "{\"op\": \"make-coffee\"}\n";
          Testutil.expect_error fd "missing op" "{\"session\": \"x\"}\n";
          Testutil.expect_error fd "session op without a session"
            "{\"op\": \"ingest\"}\n";
          Testutil.expect_error fd "hostile nesting"
            (String.make 200 '[' ^ "\n");
          Testutil.send_raw fd (String.make (Protocol.max_frame_bytes + 4096) 'a');
          let reply = Testutil.read_reply fd in
          Alcotest.(check string)
            "oversized frame answered with a clean error" "error"
            (Protocol.reply_status reply);
          Testutil.send_raw fd "\n";
          Testutil.send_raw fd (Json.to_string Protocol.ping ^ "\n");
          Alcotest.(check string)
            "connection survives the abuse" "ok"
            (Protocol.reply_status (Testutil.read_reply fd)));
      (* Mid-request disconnects, typed and during a ring change. *)
      let fd2 = Testutil.connect_raw port in
      Testutil.send_raw fd2 "{\"op\": \"ing";
      Unix.close fd2;
      Testutil.with_client port (fun c ->
          let fd3 = Testutil.connect_raw port in
          Testutil.send_raw fd3 "{\"op\": \"history\", \"session\": \"gho";
          let add =
            unwrap
              (Client.request_retry c
                 (Json.Obj [ ("op", Json.String "cluster_add") ]))
          in
          Unix.close fd3;
          Alcotest.(check string)
            "ring change with a half-dead client" "ok"
            (Protocol.reply_status add));
      (* A shard killed under the router mid-conversation: session ops
         to it must shed or recover, never hang or kill the router. *)
      Testutil.with_client port (fun c ->
          let t = small_table () in
          ignore (unwrap (Client.open_session c ~session:"victim" t));
          let owner = locate c "victim" in
          Unix.kill (shard_pid c owner) Sys.sigkill;
          let rec reopen attempts =
            match Client.open_session c ~session:"victim" t with
            | Ok o -> o
            | Error _ when attempts > 1 ->
                Unix.sleepf 0.05;
                reopen (attempts - 1)
            | Error msg ->
                Alcotest.failf "session never came back after kill -9: %s" msg
          in
          ignore (reopen 200);
          Alcotest.(check int)
            "router alive after the shard crash" Protocol.protocol_version
            (unwrap (Client.ping c));
          ignore (unwrap (Client.close_session c ~session:"victim"));
          let stats = unwrap (Client.server_stats c) in
          Alcotest.(check (option int))
            "no leaked sessions" (Some 0)
            (Protocol.int_field "sessions" stats)))

let suite =
  [
    Alcotest.test_case "ring: golden hash and placement pins" `Quick
      test_ring_golden_pins;
    Alcotest.test_case "ring: bounded remap on shard add" `Quick
      test_ring_remap_bounded;
    Testutil.qtest prop_remove_only_remaps_victim;
    Testutil.qtest prop_add_moves_only_to_newcomer;
    Testutil.qtest prop_lookup_total_and_stable;
    Alcotest.test_case "ephemeral port discipline" `Quick test_ephemeral_ports;
    Alcotest.test_case "router basics and aggregation" `Quick
      test_router_basics;
    Alcotest.test_case "cluster matches single daemon" `Quick
      test_cluster_matches_single_daemon;
    Alcotest.test_case "handoff identity" `Quick test_handoff_identity;
    Alcotest.test_case "kill -9 recovery" `Quick test_kill9_recovery;
    Alcotest.test_case "router fuzz" `Quick test_router_fuzz;
  ]
