open Vp_core

let disk =
  Vp_cost.Disk.make ~block_size:4096 ~buffer_size:(Vp_cost.Disk.mb 0.25) ()

let gen = Vp_datagen.Rowgen.create ()

let customer = Vp_benchmarks.Tpch.table ~sf:0.001 "customer"

let customer_rows = lazy (Vp_datagen.Rowgen.rows gen customer)

let customer_source =
  lazy (Vp_stream.Source.of_rows customer (Lazy.force customer_rows))

(* --- Device --- *)

let test_device_accounting () =
  let d = Vp_storage.Device.create disk in
  Vp_storage.Device.read d ~file:0 ~first_block:0 ~count:10;
  let s = Vp_storage.Device.stats d in
  Alcotest.(check int) "blocks" 10 s.blocks_read;
  Alcotest.(check int) "one seek" 1 s.seeks;
  Alcotest.(check (Testutil.close ~eps:1e-12 ()))
    "elapsed"
    (disk.Vp_cost.Disk.seek_time
    +. (10.0 *. 4096.0 /. disk.Vp_cost.Disk.read_bandwidth))
    s.elapsed

let test_device_zero_read_free () =
  let d = Vp_storage.Device.create disk in
  Vp_storage.Device.read d ~file:0 ~first_block:0 ~count:0;
  let s = Vp_storage.Device.stats d in
  Alcotest.(check int) "no seek" 0 s.seeks;
  Alcotest.(check (float 0.0)) "no time" 0.0 s.elapsed

let test_device_reset () =
  let d = Vp_storage.Device.create disk in
  Vp_storage.Device.write d ~file:1 ~first_block:0 ~count:5;
  Vp_storage.Device.reset d;
  let s = Vp_storage.Device.stats d in
  Alcotest.(check int) "cleared" 0 s.blocks_written

(* --- Codecs --- *)

let group_attrs = [ Attribute.make "k" Attribute.Int32;
                    Attribute.make "v" (Attribute.Varchar 20) ]

let sample_columns =
  [|
    Array.init 50 (fun i -> Value.Int (i * 3));
    Array.init 50 (fun i -> Value.Str (Printf.sprintf "val%d" (i mod 7)));
  |]

let roundtrip kind =
  let codec = Vp_storage.Codec.train kind group_attrs sample_columns in
  for i = 0 to 49 do
    let row = [| sample_columns.(0).(i); sample_columns.(1).(i) |] in
    let encoded = Vp_storage.Codec.encode_row codec row in
    let decoded, consumed = Vp_storage.Codec.decode_row codec encoded ~pos:0 in
    Alcotest.(check int)
      (Printf.sprintf "%s row %d consumed" (Vp_storage.Codec.kind_name kind) i)
      (Bytes.length encoded) consumed;
    Alcotest.(check bool)
      (Printf.sprintf "%s row %d values" (Vp_storage.Codec.kind_name kind) i)
      true
      (Array.for_all2 Value.equal row decoded)
  done

let test_codec_roundtrips () =
  List.iter roundtrip
    [ Vp_storage.Codec.Plain; Vp_storage.Codec.Dictionary; Vp_storage.Codec.Varlen ]

let test_codec_widths () =
  let plain = Vp_storage.Codec.train Vp_storage.Codec.Plain group_attrs sample_columns in
  Alcotest.(check (option int)) "plain fixed" (Some 24)
    (Vp_storage.Codec.fixed_row_width plain);
  let dict =
    Vp_storage.Codec.train Vp_storage.Codec.Dictionary group_attrs sample_columns
  in
  (* 7 distinct strings -> 1-byte codes; 4 + 1 = 5. *)
  Alcotest.(check (option int)) "dict fixed" (Some 5)
    (Vp_storage.Codec.fixed_row_width dict);
  let varlen =
    Vp_storage.Codec.train Vp_storage.Codec.Varlen group_attrs sample_columns
  in
  Alcotest.(check (option int)) "varlen variable" None
    (Vp_storage.Codec.fixed_row_width varlen)

let test_codec_negative_varint () =
  let attrs = [ Attribute.make "x" Attribute.Int32 ] in
  let cols = [| [| Value.Int (-12345) |] |] in
  let codec = Vp_storage.Codec.train Vp_storage.Codec.Varlen attrs cols in
  let encoded = Vp_storage.Codec.encode_row codec [| Value.Int (-12345) |] in
  let decoded, _ = Vp_storage.Codec.decode_row codec encoded ~pos:0 in
  Alcotest.(check bool) "negative int roundtrip" true
    (Value.equal (Value.Int (-12345)) decoded.(0))

let test_codec_decode_costs_ordered () =
  let open Vp_storage.Codec in
  Alcotest.(check bool) "plain cheapest" true
    (decode_ns_per_value Plain ~in_group:false
    < decode_ns_per_value Dictionary ~in_group:false);
  Alcotest.(check bool) "varlen in group most expensive" true
    (decode_ns_per_value Varlen ~in_group:true
    > decode_ns_per_value Varlen ~in_group:false)

(* --- Pfile --- *)

let build_pfile ?(codec = Vp_storage.Codec.Plain) group =
  Vp_storage.Pfile.build ~block_size:4096 ~codec_kind:codec customer
    ~group:(Attr_set.of_list group)
    (Lazy.force customer_rows)

let test_pfile_accounting () =
  let f = build_pfile [ 0; 5 ] in
  Alcotest.(check int) "rows" 150 (Vp_storage.Pfile.row_count f);
  (* 12 bytes per row, 341 rows/block -> 1 block. *)
  Alcotest.(check int) "blocks" 1 (Vp_storage.Pfile.block_count f);
  Alcotest.(check int) "payload" (150 * 12) (Vp_storage.Pfile.payload_bytes f)

let test_pfile_read_rows () =
  let f = build_pfile [ 0 ] in
  let rows = Vp_storage.Pfile.read_rows f ~first_row:10 ~count:5 in
  Alcotest.(check int) "5 rows" 5 (Array.length rows);
  (* CustKey of row 10 is 11. *)
  Alcotest.(check bool) "right values" true
    (Value.equal (Value.Int 11) rows.(0).(0));
  let beyond = Vp_storage.Pfile.read_rows f ~first_row:148 ~count:10 in
  Alcotest.(check int) "clamped" 2 (Array.length beyond)

let test_pfile_block_of_row () =
  let f = build_pfile [ 7 ] (* Comment, 117 B -> 35 rows/block *) in
  Alcotest.(check int) "row 0" 0 (Vp_storage.Pfile.block_of_row f 0);
  Alcotest.(check int) "row 35" 1 (Vp_storage.Pfile.block_of_row f 35);
  Alcotest.(check int) "blocks for 150 rows" 5 (Vp_storage.Pfile.block_count f)

let test_pfile_varlen_blocks () =
  let f = build_pfile ~codec:Vp_storage.Codec.Varlen [ 7 ] in
  (* Varlen comments are unpadded, so fewer blocks than plain. *)
  Alcotest.(check bool) "compressed" true (Vp_storage.Pfile.block_count f <= 5);
  let rows = Vp_storage.Pfile.read_rows f ~first_row:0 ~count:150 in
  Alcotest.(check int) "all rows decodable" 150 (Array.length rows)

(* --- Database executor --- *)

let workload = Vp_benchmarks.Tpch.workload ~sf:0.001 "customer"

let build_db ?(codec = Vp_storage.Codec.Plain) layout =
  Vp_storage.Database.build ~disk ~codec customer (Lazy.force customer_source)
    layout

let test_database_checksums_layout_independent () =
  let n = Table.attribute_count customer in
  let reference =
    List.map
      (fun (r : Vp_storage.Database.query_result) -> r.checksum)
      (fst (Vp_storage.Database.run_workload (build_db (Partitioning.row n)) workload))
  in
  List.iter
    (fun layout ->
      let results, _ =
        Vp_storage.Database.run_workload (build_db layout) workload
      in
      List.iter2
        (fun expected (r : Vp_storage.Database.query_result) ->
          Alcotest.(check int) "checksum" expected r.checksum)
        reference results)
    [
      Partitioning.column n;
      Partitioning.of_names customer
        [ [ "CustKey"; "Name" ]; [ "Address"; "NationKey"; "Phone" ];
          [ "AcctBal"; "MktSegment"; "Comment" ] ];
    ]

let test_database_checksums_codec_independent () =
  let n = Table.attribute_count customer in
  let layout = Partitioning.column n in
  let baseline =
    List.map
      (fun (r : Vp_storage.Database.query_result) -> r.checksum)
      (fst (Vp_storage.Database.run_workload (build_db layout) workload))
  in
  List.iter
    (fun codec ->
      let results, _ =
        Vp_storage.Database.run_workload (build_db ~codec layout) workload
      in
      List.iter2
        (fun expected (r : Vp_storage.Database.query_result) ->
          Alcotest.(check int)
            (Vp_storage.Codec.kind_name codec)
            expected r.checksum)
        baseline results)
    [ Vp_storage.Codec.Dictionary; Vp_storage.Codec.Varlen ]

let test_simulator_matches_cost_model () =
  (* For the Plain codec, per-query simulated I/O must equal the analytic
     model exactly (same block math, same buffer split, same seek rule). *)
  let n = Table.attribute_count customer in
  List.iter
    (fun layout ->
      let db = build_db layout in
      Array.iter
        (fun q ->
          let r = Vp_storage.Database.run_query db q in
          let expected = Vp_cost.Io_model.query_cost disk customer layout q in
          Alcotest.(check (Testutil.close ~eps:1e-9 ()))
            (Query.name q) expected r.io.Vp_storage.Device.elapsed)
        (Workload.queries workload))
    [ Partitioning.row n; Partitioning.column n ]

let test_dictionary_compresses () =
  let n = Table.attribute_count customer in
  let plain = build_db (Partitioning.column n) in
  let dict = build_db ~codec:Vp_storage.Codec.Dictionary (Partitioning.column n) in
  Alcotest.(check bool) "dict smaller" true
    (Vp_storage.Database.bytes_on_disk dict
    < Vp_storage.Database.bytes_on_disk plain)

let test_load_stats_counted () =
  let db = build_db (Partitioning.row (Table.attribute_count customer)) in
  let s = Vp_storage.Database.load_stats db in
  Alcotest.(check bool) "wrote blocks" true (s.blocks_written > 0);
  Alcotest.(check bool) "took time" true (s.elapsed > 0.0)

let test_query_result_shape () =
  let n = Table.attribute_count customer in
  let db = build_db (Partitioning.column n) in
  let q = Workload.query workload 0 in
  let r = Vp_storage.Database.run_query db q in
  Alcotest.(check int) "rows out" 150 r.rows_out;
  Alcotest.(check int) "partitions = referenced columns"
    (Attr_set.cardinal (Query.references q))
    r.partitions_read;
  Alcotest.(check int) "values decoded"
    (150 * Attr_set.cardinal (Query.references q))
    r.values_decoded;
  Alcotest.(check bool) "cpu time positive" true (r.cpu_seconds > 0.0)

let suite =
  [
    Alcotest.test_case "device accounting" `Quick test_device_accounting;
    Alcotest.test_case "device zero read" `Quick test_device_zero_read_free;
    Alcotest.test_case "device reset" `Quick test_device_reset;
    Alcotest.test_case "codec roundtrips" `Quick test_codec_roundtrips;
    Alcotest.test_case "codec widths" `Quick test_codec_widths;
    Alcotest.test_case "codec negative varint" `Quick test_codec_negative_varint;
    Alcotest.test_case "codec decode costs" `Quick test_codec_decode_costs_ordered;
    Alcotest.test_case "pfile accounting" `Quick test_pfile_accounting;
    Alcotest.test_case "pfile read rows" `Quick test_pfile_read_rows;
    Alcotest.test_case "pfile block of row" `Quick test_pfile_block_of_row;
    Alcotest.test_case "pfile varlen" `Quick test_pfile_varlen_blocks;
    Alcotest.test_case "checksums layout independent" `Quick
      test_database_checksums_layout_independent;
    Alcotest.test_case "checksums codec independent" `Quick
      test_database_checksums_codec_independent;
    Alcotest.test_case "simulator matches cost model" `Quick
      test_simulator_matches_cost_model;
    Alcotest.test_case "dictionary compresses" `Quick test_dictionary_compresses;
    Alcotest.test_case "load stats" `Quick test_load_stats_counted;
    Alcotest.test_case "query result shape" `Quick test_query_result_shape;
  ]

(* --- Creation transform vs the analytic creation-time model --- *)

let test_creation_matches_model () =
  let layout =
    Partitioning.of_names customer
      [ [ "CustKey"; "Name" ]; [ "Address"; "NationKey"; "Phone" ];
        [ "AcctBal"; "MktSegment" ]; [ "Comment" ] ]
  in
  let r =
    Vp_storage.Creation.transform ~disk customer (Lazy.force customer_source)
      layout
  in
  let expected = Vp_cost.Io_model.creation_time disk customer layout in
  Alcotest.(check (Testutil.close ~eps:1e-9 ()))
    "simulated = analytic" expected r.io.Vp_storage.Device.elapsed;
  Alcotest.(check int) "wrote every partition block"
    r.written_blocks r.io.Vp_storage.Device.blocks_written;
  Alcotest.(check int) "read the whole source"
    r.source_blocks r.io.Vp_storage.Device.blocks_read

let test_creation_row_and_column () =
  let n = Table.attribute_count customer in
  List.iter
    (fun layout ->
      let r =
        Vp_storage.Creation.transform ~disk customer
          (Lazy.force customer_source) layout
      in
      let expected = Vp_cost.Io_model.creation_time disk customer layout in
      Alcotest.(check (Testutil.close ~eps:1e-9 ()))
        "simulated = analytic" expected r.io.Vp_storage.Device.elapsed)
    [ Partitioning.row n; Partitioning.column n ]

let suite =
  suite
  @ [
      Alcotest.test_case "creation matches model" `Quick
        test_creation_matches_model;
      Alcotest.test_case "creation row/column" `Quick
        test_creation_row_and_column;
    ]

(* --- Property: random tables roundtrip through every codec --- *)

let gen_random_table_and_rows =
  QCheck2.Gen.(
    let* n_cols = int_range 1 6 in
    let* n_rows = int_range 0 40 in
    let* seed = int_range 0 1_000_000 in
    let attrs =
      List.init n_cols (fun i ->
          Vp_core.Attribute.make
            (Printf.sprintf "c%d" i)
            (match i mod 4 with
            | 0 -> Vp_core.Attribute.Int32
            | 1 -> Vp_core.Attribute.Decimal
            | 2 -> Vp_core.Attribute.Date
            | _ -> Vp_core.Attribute.Varchar 24))
    in
    let table =
      Vp_core.Table.make ~name:"prop" ~attributes:attrs
        ~row_count:(max 1 n_rows)
    in
    let g = Vp_datagen.Prng.create (Int64.of_int seed) in
    let rows =
      Array.init (max 1 n_rows) (fun _ ->
          Array.of_list
            (List.map
               (fun a ->
                 match Vp_core.Attribute.datatype a with
                 | Vp_core.Attribute.Int32 ->
                     Value.Int (Vp_datagen.Prng.int_in g (-1000) 100000)
                 | Vp_core.Attribute.Date ->
                     Value.Int (Vp_datagen.Prng.int_in g 8000 11000)
                 | Vp_core.Attribute.Decimal ->
                     Value.Num (Vp_datagen.Prng.float g 1e6)
                 | Vp_core.Attribute.Char _ | Vp_core.Attribute.Varchar _ ->
                     Value.Str
                       (Vp_datagen.Text.sentence g
                          ~max_len:(Vp_datagen.Prng.int_in g 0 24)))
               attrs))
    in
    return (table, rows))

let prop_pfile_roundtrip_random =
  QCheck2.Test.make ~name:"pfile roundtrip on random tables/codecs" ~count:60
    QCheck2.Gen.(pair gen_random_table_and_rows (int_range 0 2))
    (fun ((table, rows), codec_idx) ->
      let codec_kind =
        match codec_idx with
        | 0 -> Vp_storage.Codec.Plain
        | 1 -> Vp_storage.Codec.Dictionary
        | _ -> Vp_storage.Codec.Varlen
      in
      let n = Table.attribute_count table in
      let f =
        Vp_storage.Pfile.build ~block_size:512 ~codec_kind table
          ~group:(Attr_set.full n) rows
      in
      let back =
        Vp_storage.Pfile.read_rows f ~first_row:0 ~count:(Array.length rows)
      in
      Array.length back = Array.length rows
      && Array.for_all2
           (fun a b -> Array.for_all2 Value.equal a b)
           rows back)

let suite =
  suite @ [ Testutil.qtest prop_pfile_roundtrip_random ]
