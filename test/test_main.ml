(* Test entry point: one alcotest suite per module area. *)

(* The cluster tests spawn shard daemons by re-execing this very
   binary; the worker sentinel must be checked before alcotest ever
   sees argv. *)
let () = Vp_router.Worker.maybe_run ()

let () =
  Alcotest.run "vertpart"
    [
      ("attr_set", Test_attr_set.suite);
      ("core", Test_core.suite);
      ("partitioning", Test_partitioning.suite);
      ("enumeration", Test_enumeration.suite);
      ("cost", Test_cost.suite);
      ("delta_oracle", Test_delta_oracle.suite);
      ("algorithms", Test_algorithms.suite);
      ("substrates", Test_substrates.suite);
      ("benchmarks", Test_benchmarks.suite);
      ("datagen", Test_datagen.suite);
      ("stream", Test_stream.suite);
      ("storage", Test_storage.suite);
      ("metrics", Test_metrics.suite);
      ("report", Test_report.suite);
      ("extensions", Test_extensions.suite);
      ("golden", Test_golden.suite);
      ("parser", Test_parser.suite);
      ("experiments", Test_experiments.suite);
      ("parallel", Test_parallel.suite);
      ("determinism", Test_determinism.suite);
      ("invariants", Test_invariants.suite);
      ("portfolio", Test_portfolio.suite);
      ("robust", Test_robust.suite);
      ("observe", Test_observe.suite);
      ("online", Test_online.suite);
      ("server", Test_server.suite);
      ("durability", Test_durability.suite);
      ("cluster", Test_cluster.suite);
    ]
