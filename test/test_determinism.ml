(* Parallel execution must be bit-for-bit deterministic: fanning
   experiments across domains may change in which order (and on which
   domain) results are computed, but never what they are. A sample of
   cheap, pure-cost experiments is rendered three ways — directly, through
   the runner with one job, and through the runner with four jobs — and
   the outputs must be byte-identical. *)

let sample_ids = [ "table1"; "table2"; "fig3"; "fig4"; "fig5"; "fig6" ]

let direct_outputs () =
  List.map
    (fun id -> ((Vp_experiments.Registry.find id).Vp_experiments.Registry.run) ())
    sample_ids

let runner_outputs ~jobs =
  let tasks =
    List.map
      (fun id ->
        let e = Vp_experiments.Registry.find id in
        Vp_parallel.Runner.task ~label:e.Vp_experiments.Registry.id
          e.Vp_experiments.Registry.run)
      sample_ids
  in
  Vp_parallel.Runner.run ~jobs tasks

let test_runner_matches_direct () =
  let direct = direct_outputs () in
  List.iter
    (fun jobs ->
      let outcomes = runner_outputs ~jobs in
      Alcotest.(check (list string))
        (Printf.sprintf "labels in submission order, jobs=%d" jobs)
        sample_ids
        (List.map
           (fun (o : string Vp_parallel.Runner.outcome) -> o.label)
           outcomes);
      List.iter2
        (fun id (expect, got) ->
          Alcotest.(check string)
            (Printf.sprintf "%s byte-identical, jobs=%d" id jobs)
            expect got)
        sample_ids
        (List.combine direct
           (List.map
              (fun (o : string Vp_parallel.Runner.outcome) -> o.value)
              outcomes)))
    [ 1; 4 ]

let test_jobs1_equals_jobs4 () =
  let one = runner_outputs ~jobs:1 in
  let four = runner_outputs ~jobs:4 in
  List.iter2
    (fun (a : string Vp_parallel.Runner.outcome)
         (b : string Vp_parallel.Runner.outcome) ->
      Alcotest.(check string) (a.label ^ " jobs:1 = jobs:4") a.value b.value)
    one four

(* Observability must be pure observation: a traced run is byte-identical
   to an untraced run. The spans and counters record what happened — they
   must never change what happens. *)

let test_traced_experiments_byte_identical () =
  let untraced =
    Vp_observe.Switch.(with_level Off) direct_outputs
  in
  let traced =
    Vp_observe.Switch.(with_level Trace) (fun () ->
        Vp_observe.Trace.clear ();
        direct_outputs ())
  in
  List.iter2
    (fun id (expect, got) ->
      Alcotest.(check string)
        (Printf.sprintf "%s traced = untraced" id)
        expect got)
    sample_ids
    (List.combine untraced traced)

let prop_traced_algorithms_identical =
  QCheck2.Test.make ~count:25
    ~name:"tracing never changes an algorithm's result (random workloads)"
    (Testutil.gen_workload 6 4)
    (fun w ->
      let disk = Vp_cost.Disk.default in
      let results level =
        Vp_observe.Switch.with_level level (fun () ->
            List.map
              (fun (a : Vp_core.Partitioner.t) ->
                let oracle = Vp_cost.Io_model.oracle disk w in
                let r = Vp_core.Partitioner.exec a (Vp_core.Partitioner.Request.make ~cost:oracle w) in
                ( a.Vp_core.Partitioner.name,
                  Int64.bits_of_float r.Vp_core.Partitioner.Response.cost,
                  r.Vp_core.Partitioner.Response.partitioning ))
              Vp_algorithms.Registry.six)
      in
      let off = results Vp_observe.Switch.Off
      and on = results Vp_observe.Switch.Trace in
      List.for_all2
        (fun (n1, c1, p1) (n2, c2, p2) ->
          n1 = n2 && Int64.equal c1 c2 && Vp_core.Partitioning.equal p1 p2)
        off on)

(* The incremental delta oracle must be invisible end to end: with the
   kill switch off (the VP_NO_DELTA path, full re-costing) and on, every
   registered algorithm produces byte-identical layouts, cost bits,
   status and provenance over the TPC-H line-up — through the parallel
   runner at 1 and 4 jobs, traced and untraced. *)

let render_lineup ~jobs () =
  let open Vp_core in
  let disk = Vp_experiments.Common.disk in
  let workloads = Vp_benchmarks.Tpch.workloads ~sf:1.0 in
  let render_algo (a : Partitioner.t) () =
    workloads
    |> List.map (fun w ->
           let oracle = Vp_cost.Io_model.oracle disk w in
           let delta = Vp_cost.Io_model.Incremental.factory disk w in
           let r =
             Partitioner.exec a
               (Partitioner.Request.make ~label:"determinism" ~delta
                  ~cost:oracle w)
           in
           let p = r.Partitioner.Response.provenance in
           Printf.sprintf "%s|%s|%Lx|%s|%s/%s/%s|%s"
             a.Partitioner.name
             (Table.name (Workload.table w))
             (Int64.bits_of_float r.Partitioner.Response.cost)
             (Partitioning.to_string r.Partitioner.Response.partitioning)
             p.Partitioner.Response.algorithm
             p.Partitioner.Response.short_name
             (Option.value ~default:"-" p.Partitioner.Response.label)
             (match r.Partitioner.Response.status with
             | Partitioner.Complete -> "complete"
             | Partitioner.Timed_out { steps; _ } ->
                 Printf.sprintf "timed_out:%d" steps))
    |> String.concat "\n"
  in
  let tasks =
    List.map
      (fun (a : Partitioner.t) ->
        Vp_parallel.Runner.task ~label:a.Partitioner.name (render_algo a))
      (Vp_experiments.Common.algorithms_with_baselines disk)
  in
  Vp_parallel.Runner.run ~jobs tasks
  |> List.map (fun (o : string Vp_parallel.Runner.outcome) -> o.value)
  |> String.concat "\n"

let test_delta_on_off_byte_identical () =
  let was = Vp_core.Partitioner.Delta.enabled () in
  Fun.protect
    ~finally:(fun () -> Vp_core.Partitioner.Delta.set_enabled was)
    (fun () ->
      List.iter
        (fun jobs ->
          List.iter
            (fun (level_name, level) ->
              let run enabled =
                Vp_core.Partitioner.Delta.set_enabled enabled;
                Vp_observe.Switch.with_level level (render_lineup ~jobs)
              in
              let with_delta = run true and without = run false in
              Alcotest.(check string)
                (Printf.sprintf "delta = full, jobs=%d, %s" jobs level_name)
                without with_delta)
            [ ("untraced", Vp_observe.Switch.Off); ("traced", Vp_observe.Switch.Trace) ])
        [ 1; 4 ])

let suite =
  [
    Alcotest.test_case "runner matches direct run" `Quick
      test_runner_matches_direct;
    Alcotest.test_case "jobs 1 = jobs 4" `Quick test_jobs1_equals_jobs4;
    Alcotest.test_case "traced experiments byte-identical" `Quick
      test_traced_experiments_byte_identical;
    Testutil.qtest prop_traced_algorithms_identical;
    Alcotest.test_case "delta oracle invisible end to end" `Quick
      test_delta_on_off_byte_identical;
  ]
