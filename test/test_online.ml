(* The online layout service (lib/online): replay determinism across
   runs / --jobs / tracing, the pay-off adoption invariant, the
   acceptance-bar win over one-shot optimization on a drifting stream,
   and the incremental workload/affinity bookkeeping behind it all. *)

open Vp_core

(* The seek-bound regime the bench harness replays: a small buffer makes
   layout quality matter, so tracking the drift is worth the
   migrations. *)
let seek_disk =
  Vp_cost.Disk.with_buffer_size Vp_cost.Disk.default (Vp_cost.Disk.mb 1.0)

let drift_trace =
  lazy
    (Vp_benchmarks.Synthetic.drift_workload ~attributes:16 ~clusters:4
       ~rows:200_000 ~queries:600 ~scatter:0.05 ~drift_at:0.4 ())

let config ?(jobs = 1) () =
  Vp_online.Service.default_config ~jobs ~disk:seek_disk
    ~panel:[ Vp_algorithms.Hillclimb.algorithm ]
    ()

let replay ?(jobs = 1) () =
  Vp_online.Replay.run ~config:(config ~jobs ()) (Lazy.force drift_trace)

(* One reference replay, shared by the tests below (each determinism
   test re-runs under its own variation and compares against this). *)
let baseline = lazy (replay ())

(* --- determinism: the ISSUE's byte-identical replay requirement --- *)

let test_replay_deterministic () =
  let a = Lazy.force baseline and b = replay () in
  Alcotest.(check string)
    "byte-identical history" a.Vp_online.Replay.history
    b.Vp_online.Replay.history;
  Alcotest.(check (float 0.0))
    "identical online cost" a.Vp_online.Replay.online_cost
    b.Vp_online.Replay.online_cost

let test_replay_jobs_invariant () =
  let a = Lazy.force baseline and b = replay ~jobs:4 () in
  Alcotest.(check string)
    "history independent of --jobs" a.Vp_online.Replay.history
    b.Vp_online.Replay.history;
  Alcotest.(check (float 0.0))
    "cost independent of --jobs" a.Vp_online.Replay.online_cost
    b.Vp_online.Replay.online_cost

let test_replay_trace_invariant () =
  let a = Lazy.force baseline in
  let b =
    Vp_observe.Switch.with_level Vp_observe.Switch.Trace (fun () -> replay ())
  in
  Alcotest.(check string)
    "history independent of tracing" a.Vp_online.Replay.history
    b.Vp_online.Replay.history

(* --- the adoption invariant: provenance is complete and the pay-off
   rule is exactly what the events claim it was --- *)

let test_adoption_invariant () =
  let horizon = (config ()).Vp_online.Service.horizon in
  let open Vp_online.Service in
  let o = Lazy.force baseline in
  Alcotest.(check bool) "at least one re-opt" true (o.Vp_online.Replay.reopts >= 1);
  Alcotest.(check bool) "at least one adoption" true
    (o.Vp_online.Replay.adopted >= 1);
  Alcotest.(check int) "reopts = adopted + rejected" o.Vp_online.Replay.reopts
    (o.Vp_online.Replay.adopted + o.Vp_online.Replay.rejected);
  Alcotest.(check int) "final generation counts adoptions"
    o.Vp_online.Replay.adopted o.Vp_online.Replay.final_generation;
  let gen = ref 0 and last_at = ref (-1) in
  List.iter
    (fun (e : event) ->
      Alcotest.(check bool) "events ordered by stream position" true
        (e.trigger_query > !last_at);
      last_at := e.trigger_query;
      (match e.verdict with
      | Adopted ->
          incr gen;
          Alcotest.(check bool) "adopted only on improvement" true
            (e.cost_after < e.cost_before);
          Alcotest.(check bool) "adopted pay-off within horizon" true
            (e.payoff >= 0.0 && e.payoff <= horizon)
      | Rejected ->
          Alcotest.(check bool) "rejected fails the adoption rule" true
            (not
               (e.cost_before -. e.cost_after > 0.0
               && e.payoff >= 0.0 && e.payoff <= horizon)));
      Alcotest.(check int) "generation tracks adoptions" !gen e.generation)
    o.Vp_online.Replay.events;
  Alcotest.(check (Testutil.close ()))
    "online cost = queries + migrations" o.Vp_online.Replay.online_cost
    (o.Vp_online.Replay.online_query_cost
    +. o.Vp_online.Replay.online_migration_cost)

(* --- the acceptance bar: on the drifting stream, adapting must beat
   the one-shot batch layout by at least 10% --- *)

let test_online_beats_oneshot () =
  let o = Lazy.force baseline in
  Alcotest.(check bool)
    (Printf.sprintf "online %.4f <= 0.9 x one-shot %.4f"
       o.Vp_online.Replay.online_cost o.Vp_online.Replay.oneshot_cost)
    true
    (o.Vp_online.Replay.online_cost <= 0.9 *. o.Vp_online.Replay.oneshot_cost)

(* --- counters: one increment per ingest/decision, none when off --- *)

let test_counters () =
  let before = Vp_observe.Stats.snapshot () in
  let o =
    Vp_observe.Switch.with_level Vp_observe.Switch.Stats (fun () -> replay ())
  in
  let after = Vp_observe.Stats.snapshot () in
  let delta name =
    Vp_observe.Stats.counter_value after name
    - Vp_observe.Stats.counter_value before name
  in
  Alcotest.(check int) "online.ingested" o.Vp_online.Replay.queries
    (delta "online.ingested");
  Alcotest.(check int) "online.reopts" o.Vp_online.Replay.reopts
    (delta "online.reopts");
  Alcotest.(check int) "online.adopted" o.Vp_online.Replay.adopted
    (delta "online.adopted");
  Alcotest.(check int) "online.rejected" o.Vp_online.Replay.rejected
    (delta "online.rejected")

(* --- service basics and config validation --- *)

let test_service_basics () =
  let w = Lazy.force drift_trace in
  let table = Workload.table w in
  let s = Vp_online.Service.create (config ()) table in
  Alcotest.(check int) "starts at generation 0" 0
    (Vp_online.Service.generation s);
  Alcotest.(check int) "nothing ingested" 0 (Vp_online.Service.ingested s);
  Alcotest.(check bool) "starts on the row layout" true
    (Partitioning.equal
       (Partitioning.row (Table.attribute_count table))
       (Vp_online.Service.layout s));
  Alcotest.(check string) "empty history" "" (Vp_online.Service.history s);
  let k = 5 in
  Array.iteri
    (fun i q -> if i < k then Vp_online.Service.ingest s q)
    (Workload.queries w);
  Alcotest.(check int) "ingest counts" k (Vp_online.Service.ingested s);
  Alcotest.(check int) "workload tracks the stream" k
    (Workload.query_count (Vp_online.Service.workload s));
  Alcotest.(check bool) "affinity agrees with a rebuild" true
    (Affinity.equal
       (Vp_online.Service.affinity s)
       (Affinity.of_workload (Vp_online.Service.workload s)))

let expect_invalid name f =
  match f () with
  | _ -> Alcotest.fail (name ^ ": expected Invalid_argument")
  | exception Invalid_argument _ -> ()

let test_config_validation () =
  let mk ?drift_ratio ?min_window ?epoch ?memory ?horizon ?jobs
      ?(panel = [ Vp_algorithms.Hillclimb.algorithm ]) () =
    Vp_online.Service.default_config ?drift_ratio ?min_window ?epoch ?memory
      ?horizon ?jobs ~disk:seek_disk ~panel ()
  in
  expect_invalid "empty panel" (fun () -> mk ~panel:[] ());
  expect_invalid "drift_ratio 0" (fun () -> mk ~drift_ratio:0.0 ());
  expect_invalid "min_window 0" (fun () -> mk ~min_window:0 ());
  expect_invalid "negative epoch" (fun () -> mk ~epoch:(-1) ());
  expect_invalid "negative memory" (fun () -> mk ~memory:(-1) ());
  expect_invalid "horizon 0" (fun () -> mk ~horizon:0.0 ());
  expect_invalid "jobs 0" (fun () -> mk ~jobs:0 ());
  expect_invalid "drift_at out of range" (fun () ->
      Vp_benchmarks.Synthetic.drift_workload ~attributes:4 ~clusters:2
        ~queries:4 ~scatter:0.0 ~drift_at:1.5 ());
  expect_invalid "replay of an empty stream" (fun () ->
      Vp_online.Replay.run ~config:(config ())
        (Workload.make (Workload.table (Lazy.force drift_trace)) []))

(* --- the incremental bookkeeping the service relies on:
   Workload.add_query / Affinity.add_query agree with a from-scratch
   rebuild on every derived statistic --- *)

let prop_incremental_bookkeeping_agrees =
  QCheck2.Test.make ~name:"add_query agrees with rebuild" ~count:100
    (Testutil.gen_workload 6 8)
    (fun w ->
      let table = Workload.table w in
      let n = Table.attribute_count table in
      let qs = Array.to_list (Workload.queries w) in
      let incremental =
        List.fold_left Workload.add_query (Workload.make table []) qs
      in
      let aff = Affinity.create n in
      List.iter (Affinity.add_query aff) qs;
      let co_access_agrees = ref true in
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          if
            Workload.co_access_count incremental i j
            <> Workload.co_access_count w i j
          then co_access_agrees := false
        done
      done;
      Affinity.equal aff (Affinity.of_workload w)
      && Affinity.equal (Affinity.of_workload incremental)
           (Affinity.of_workload w)
      && Workload.query_count incremental = Workload.query_count w
      && Workload.total_weight incremental = Workload.total_weight w
      && Attr_set.equal
           (Workload.referenced_attributes incremental)
           (Workload.referenced_attributes w)
      && !co_access_agrees)

(* --- exec is the single entry point (the deprecated run shim is gone);
   its response must carry honest provenance --- *)

let test_exec_provenance () =
  let w = Vp_benchmarks.Tpch.workload ~sf:1.0 "customer" in
  let oracle = Vp_cost.Io_model.oracle Vp_cost.Disk.default w in
  List.iter
    (fun (algo : Partitioner.t) ->
      let r =
        Partitioner.exec algo
          (Partitioner.Request.make ~label:"prov-test" ~cost:oracle w)
      in
      Alcotest.(check string)
        (algo.Partitioner.name ^ " provenance algorithm")
        algo.Partitioner.name r.Partitioner.Response.provenance.algorithm;
      Alcotest.(check (option string))
        (algo.Partitioner.name ^ " provenance label")
        (Some "prov-test") r.Partitioner.Response.provenance.label;
      Alcotest.(check (Testutil.close ()))
        (algo.Partitioner.name ^ " response cost agrees with oracle")
        (oracle r.Partitioner.Response.partitioning)
        r.Partitioner.Response.cost)
    Vp_algorithms.Registry.six

let suite =
  [
    Alcotest.test_case "replay deterministic" `Quick test_replay_deterministic;
    Alcotest.test_case "replay jobs-invariant" `Quick
      test_replay_jobs_invariant;
    Alcotest.test_case "replay trace-invariant" `Quick
      test_replay_trace_invariant;
    Alcotest.test_case "adoption invariant" `Quick test_adoption_invariant;
    Alcotest.test_case "online beats one-shot by 10%" `Quick
      test_online_beats_oneshot;
    Alcotest.test_case "counters" `Quick test_counters;
    Alcotest.test_case "service basics" `Quick test_service_basics;
    Alcotest.test_case "config validation" `Quick test_config_validation;
    Testutil.qtest prop_incremental_bookkeeping_agrees;
    Alcotest.test_case "exec provenance" `Quick test_exec_provenance;
  ]
