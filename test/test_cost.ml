open Vp_core

(* A disk profile with round numbers so costs can be computed by hand:
   1000-byte blocks, 4000-byte buffer, 1 MB/s bandwidth, 10 ms seek. *)
let hand_disk =
  Vp_cost.Disk.make ~block_size:1000 ~buffer_size:4000 ~read_bandwidth:1e6
    ~write_bandwidth:1e6 ~seek_time:0.01 ()

(* tiny: 1000 rows of a:int32(4) b:decimal(8) c:char(20). *)
let table = Testutil.tiny

let q refs = Query.make ~name:"q" ~references:(Attr_set.of_list refs) ()

let cost p refs =
  Vp_cost.Io_model.query_cost hand_disk table p (q refs)

let test_single_column_query () =
  (* Column layout, query {a}: partition of width 4 gets the whole buffer.
     blocks = ceil(1000 / floor(1000/4)) = 4; refills = ceil(4/4) = 1;
     cost = 0.01 + 4000/1e6 = 0.014. *)
  Alcotest.(check (Testutil.close ~eps:1e-12 ()))
    "hand computed" 0.014
    (cost (Partitioning.column 3) [ 0 ])

let test_two_column_query () =
  (* Column layout, query {a,b}: buffer split 4:8.
     a: share 1333 -> 1 block per refill, 4 blocks -> 4 refills; scan 0.004.
     b: share 2666 -> 2 blocks, blocks = ceil(1000/125) = 8 -> 4 refills;
     scan 0.008. Total = 0.04 + 0.004 + 0.04 + 0.008 = 0.092. *)
  Alcotest.(check (Testutil.close ~eps:1e-12 ()))
    "hand computed" 0.092
    (cost (Partitioning.column 3) [ 0; 1 ])

let test_row_layout_query () =
  (* Row layout (width 32), query {a}: reads everything.
     rows/block = 31 -> 33 blocks; buffer 4 blocks -> 9 refills;
     cost = 0.09 + 0.033 = 0.123. *)
  Alcotest.(check (Testutil.close ~eps:1e-12 ()))
    "hand computed" 0.123
    (cost (Partitioning.row 3) [ 0 ])

let test_breakdown_consistency () =
  let p = Partitioning.column 3 in
  let query = q [ 0; 1 ] in
  let b = Vp_cost.Io_model.query_breakdown hand_disk table p query in
  Alcotest.(check (Testutil.close ~eps:1e-12 ()))
    "seek+scan = cost"
    (Vp_cost.Io_model.query_cost hand_disk table p query)
    (b.seek_cost +. b.scan_cost);
  Alcotest.(check int) "partitions" 2 b.partitions_read;
  Alcotest.(check (float 0.0)) "bytes needed" 12000.0 b.bytes_needed;
  Alcotest.(check (float 0.0)) "bytes read" 12000.0 b.bytes_read;
  Alcotest.(check int) "seeks = refills" 8 b.seeks

let test_row_reads_everything () =
  let b =
    Vp_cost.Io_model.query_breakdown hand_disk table (Partitioning.row 3) (q [ 0 ])
  in
  Alcotest.(check (float 0.0)) "reads full rows" 32000.0 b.bytes_read;
  Alcotest.(check (float 0.0)) "needs only a" 4000.0 b.bytes_needed

let test_partition_blocks () =
  Alcotest.(check int) "4B rows" 4
    (Vp_cost.Io_model.partition_blocks hand_disk ~rows:1000 ~row_size:4);
  Alcotest.(check int) "wider than block" 3
    (Vp_cost.Io_model.partition_blocks hand_disk ~rows:2 ~row_size:1500);
  Alcotest.(check int) "zero rows" 0
    (Vp_cost.Io_model.partition_blocks hand_disk ~rows:0 ~row_size:4)

let test_workload_cost_weighted () =
  let q1 = Query.make ~weight:2.0 ~name:"q1" ~references:(Attr_set.singleton 0) () in
  let w = Workload.make table [ q1 ] in
  let p = Partitioning.column 3 in
  Alcotest.(check (Testutil.close ~eps:1e-12 ()))
    "weight doubles cost" (2.0 *. 0.014)
    (Vp_cost.Io_model.workload_cost hand_disk w p)

let test_pmv_cost () =
  (* PMV for query {a}: dedicated partition of width 4 with the whole
     buffer = the column-layout single-column case. *)
  let w = Workload.make table [ q [ 0 ] ] in
  Alcotest.(check (Testutil.close ~eps:1e-12 ()))
    "pmv" 0.014
    (Vp_cost.Io_model.pmv_cost hand_disk w)

let test_creation_time_positive () =
  let t = Vp_cost.Io_model.creation_time hand_disk table (Partitioning.column 3) in
  Alcotest.(check bool) "positive" true (t > 0.0);
  (* At least the sequential read of the table plus the write of all
     partitions. *)
  let floor_time = (32000.0 +. 32000.0) /. 1e6 in
  Alcotest.(check bool) "above transfer floor" true (t >= floor_time)

let test_memory_model_hand () =
  let mm = Vp_cost.Memory_model.make ~cache_line:64 ~bandwidth:1e9 () in
  (* Column layout, query {a}: 4000 bytes -> 63 lines -> 4032 bytes. *)
  Alcotest.(check (Testutil.close ~eps:1e-12 ()))
    "hand" (4032.0 /. 1e9)
    (Vp_cost.Memory_model.query_cost mm table (Partitioning.column 3) (q [ 0 ]))

(* --- properties --- *)

let arb_workload_and_partitioning =
  QCheck2.Gen.(
    let* w = Testutil.gen_workload 6 5 in
    let* seed = int in
    let state = Random.State.make [| seed |] in
    let p = Enumeration.random_partitioning (Random.State.int state) 6 in
    return (w, p))

let prop_cost_positive =
  QCheck2.Test.make ~name:"workload cost positive" ~count:200
    arb_workload_and_partitioning (fun (w, p) ->
      Vp_cost.Io_model.workload_cost hand_disk w p > 0.0)

let prop_pmv_is_lower_bound =
  QCheck2.Test.make ~name:"PMV cost <= any layout cost" ~count:200
    arb_workload_and_partitioning (fun (w, p) ->
      Vp_cost.Io_model.pmv_cost hand_disk w
      <= Vp_cost.Io_model.workload_cost hand_disk w p +. 1e-9)

let prop_cost_monotone_in_rows =
  QCheck2.Test.make ~name:"cost monotone in row count" ~count:200
    arb_workload_and_partitioning (fun (w, p) ->
      let bigger =
        Workload.with_table w
          (Table.with_row_count (Workload.table w)
             (2 * Table.row_count (Workload.table w)))
      in
      Vp_cost.Io_model.workload_cost hand_disk w p
      <= Vp_cost.Io_model.workload_cost hand_disk bigger p +. 1e-9)

let prop_needed_le_read =
  QCheck2.Test.make ~name:"bytes needed <= bytes read" ~count:200
    arb_workload_and_partitioning (fun (w, p) ->
      Array.for_all
        (fun query ->
          let b =
            Vp_cost.Io_model.query_breakdown hand_disk (Workload.table w) p query
          in
          b.bytes_needed <= b.bytes_read +. 1e-9)
        (Workload.queries w))

let prop_brute_force_bound_admissible =
  (* With the final partitioning's groups as blocks and nothing remaining,
     the branch-and-bound lower bound must not exceed the true cost. *)
  QCheck2.Test.make ~name:"B&B lower bound admissible at leaves" ~count:200
    arb_workload_and_partitioning (fun (w, p) ->
      Vp_cost.Bounds.io_brute_force hand_disk w
        ~blocks:(Partitioning.groups p) ~remaining:Attr_set.empty
      <= Vp_cost.Io_model.workload_cost hand_disk w p +. 1e-9)

let prop_bound_admissible_at_prefixes =
  (* The bound must under-estimate the final cost from any prefix of the
     assignment: blocks = a subset of the final groups, remaining = the
     attributes of the rest. *)
  QCheck2.Test.make ~name:"B&B lower bound admissible at prefixes" ~count:200
    arb_workload_and_partitioning (fun (w, p) ->
      let groups = Partitioning.groups p in
      let rec prefixes acc = function
        | [] -> [ List.rev acc ]
        | g :: rest -> List.rev acc :: prefixes (g :: acc) rest
      in
      let full_cost = Vp_cost.Io_model.workload_cost hand_disk w p in
      List.for_all
        (fun blocks ->
          let covered =
            List.fold_left Attr_set.union Attr_set.empty blocks
          in
          let remaining =
            Attr_set.diff (Table.all_attributes (Workload.table w)) covered
          in
          Vp_cost.Bounds.io_brute_force hand_disk w ~blocks ~remaining
          <= full_cost +. 1e-9)
        (prefixes [] groups))

let prop_memory_column_optimal =
  QCheck2.Test.make ~name:"MM model: column layout near-optimal" ~count:200
    arb_workload_and_partitioning (fun (w, p) ->
      let mm = Vp_cost.Memory_model.default in
      let n = Table.attribute_count (Workload.table w) in
      (* Tolerance: one cache line per (query, group) of rounding. *)
      let slack =
        float_of_int (Workload.query_count w * n * 64) /. 10.0e9
      in
      Vp_cost.Memory_model.workload_cost mm w (Partitioning.column n)
      <= Vp_cost.Memory_model.workload_cost mm w p +. slack)

let suite =
  [
    Alcotest.test_case "single-column query" `Quick test_single_column_query;
    Alcotest.test_case "two-column query" `Quick test_two_column_query;
    Alcotest.test_case "row-layout query" `Quick test_row_layout_query;
    Alcotest.test_case "breakdown consistency" `Quick test_breakdown_consistency;
    Alcotest.test_case "row reads everything" `Quick test_row_reads_everything;
    Alcotest.test_case "partition blocks" `Quick test_partition_blocks;
    Alcotest.test_case "weighted workload cost" `Quick test_workload_cost_weighted;
    Alcotest.test_case "pmv cost" `Quick test_pmv_cost;
    Alcotest.test_case "creation time" `Quick test_creation_time_positive;
    Alcotest.test_case "memory model hand value" `Quick test_memory_model_hand;
    Testutil.qtest prop_cost_positive;
    Testutil.qtest prop_pmv_is_lower_bound;
    Testutil.qtest prop_cost_monotone_in_rows;
    Testutil.qtest prop_needed_le_read;
    Testutil.qtest prop_brute_force_bound_admissible;
    Testutil.qtest prop_bound_admissible_at_prefixes;
    Testutil.qtest prop_memory_column_optimal;
  ]

(* The paper: "The time to transform from row layout to vertically
   partitioned layout for scale factor 10 is around 420 seconds for all
   algorithms." Our analytic creation time for the HillClimb layouts must
   land in that ballpark (the exact number depends on the write-bandwidth
   accounting). *)
let test_creation_time_paper_ballpark () =
  let disk = Vp_cost.Disk.default in
  let total =
    List.fold_left
      (fun acc w ->
        let oracle = Vp_cost.Io_model.oracle disk w in
        let r = Partitioner.exec Vp_algorithms.Hillclimb.algorithm (Partitioner.Request.make ~cost:oracle w) in
        acc
        +. Vp_cost.Io_model.creation_time disk (Workload.table w)
             r.Partitioner.Response.partitioning)
      0.0
      (Vp_benchmarks.Tpch.workloads ~sf:10.0)
  in
  Alcotest.(check bool)
    (Printf.sprintf "creation in [300, 700] s (got %.0f, paper ~420)" total)
    true
    (total >= 300.0 && total <= 700.0)

let suite =
  suite
  @ [
      Alcotest.test_case "creation time paper ballpark" `Quick
        test_creation_time_paper_ballpark;
    ]
