(* The robustness layer end to end: budget semantics, deterministic retry
   and fault injection, journal durability, fault-tolerant pools, and
   graceful degradation of the searches and the experiment sweep. *)

open Vp_core
module Budget = Vp_robust.Budget
module Fault = Vp_robust.Fault
module Retry = Vp_robust.Retry
module Journal = Vp_robust.Journal
module Mix = Vp_robust.Mix

let disk = Vp_cost.Disk.default

(* A small deterministic workload: [n] INT columns, three overlapping
   queries — enough structure that every search has real work to do. *)
let workload ?(n = 6) () =
  let attributes =
    List.init n (fun j -> Attribute.make (Printf.sprintf "c%d" j) Attribute.Int32)
  in
  let table = Table.make ~name:"t" ~attributes ~row_count:1_000_000 in
  let full = (1 lsl n) - 1 in
  let queries =
    [
      Query.make ~name:"q0" ~weight:1.0 ~references:(Attr_set.of_mask 0b11) ();
      Query.make ~name:"q1" ~weight:2.0
        ~references:(Attr_set.of_mask (full lxor 0b11))
        ();
      Query.make ~name:"q2" ~weight:0.5 ~references:(Attr_set.of_mask full) ();
    ]
  in
  Workload.make table queries

(* {2 Budgets} *)

let test_budget_semantics () =
  (* Validation. *)
  (match Budget.create ~deadline_seconds:0.0 () with
  | _ -> Alcotest.fail "zero deadline should be rejected"
  | exception Invalid_argument _ -> ());
  (match Budget.create ~max_steps:(-1) () with
  | _ -> Alcotest.fail "negative steps should be rejected"
  | exception Invalid_argument _ -> ());
  (* Step counting and exhaustion. *)
  let b = Budget.create ~max_steps:3 () in
  Alcotest.(check bool) "limited" true (Budget.is_limited b);
  Alcotest.(check bool) "tick 1" true (Budget.try_tick b);
  Alcotest.(check bool) "tick 2" true (Budget.try_tick b);
  Alcotest.(check bool) "tick 3" true (Budget.try_tick b);
  Alcotest.(check bool) "not yet exhausted" false (Budget.exhausted b);
  Alcotest.(check bool) "tick 4 fails" false (Budget.try_tick b);
  Alcotest.(check bool) "now exhausted" true (Budget.exhausted b);
  (* Sticky: every further tick fails/raises immediately. *)
  Alcotest.(check bool) "sticky try_tick" false (Budget.try_tick b);
  (match Budget.tick b with
  | () -> Alcotest.fail "tick on exhausted budget should raise"
  | exception Budget.Exhausted -> ());
  Alcotest.(check bool) "steps recorded" true (Budget.steps b >= 3);
  (* External exhaustion. *)
  let b2 = Budget.create () in
  Alcotest.(check bool) "fresh not exhausted" false (Budget.exhausted b2);
  Budget.exhaust b2;
  Alcotest.(check bool) "exhaust is sticky" true (Budget.exhausted b2);
  Alcotest.(check bool) "exhausted try_tick" false (Budget.try_tick b2);
  (* The unlimited budget is inert. *)
  let u = Budget.unlimited in
  Alcotest.(check bool) "unlimited not limited" false (Budget.is_limited u);
  for _ = 1 to 10 do
    Alcotest.(check bool) "unlimited ticks" true (Budget.try_tick u)
  done;
  Budget.exhaust u;
  Alcotest.(check bool) "unlimited cannot exhaust" false (Budget.exhausted u);
  Alcotest.(check int) "unlimited counts nothing" 0 (Budget.steps u);
  (* Deadline budgets exhaust by wall clock. *)
  let d = Budget.create ~deadline_seconds:0.01 () in
  Unix.sleepf 0.02;
  Alcotest.(check bool) "past deadline" false (Budget.try_tick d)

let test_budget_ambient () =
  Alcotest.(check bool) "default is unlimited" false
    (Budget.is_limited (Budget.current ()));
  let b = Budget.create ~max_steps:5 () in
  Budget.with_current b (fun () ->
      Alcotest.(check bool) "installed" true (Budget.current () == b));
  Alcotest.(check bool) "restored" false (Budget.is_limited (Budget.current ()));
  (* Restored on exceptions too. *)
  (try
     Budget.with_current b (fun () -> failwith "boom")
   with Failure _ -> ());
  Alcotest.(check bool) "restored after raise" false
    (Budget.is_limited (Budget.current ()))

(* {2 Retry} *)

let test_retry_determinism () =
  let schedule seed =
    let delays = ref [] in
    let sleep d = delays := d :: !delays in
    let calls = ref 0 in
    let v =
      Retry.with_backoff ~attempts:4 ~base_delay:0.05 ~max_delay:2.0 ~sleep
        ~seed (fun attempt ->
          incr calls;
          if attempt < 3 then failwith "flaky" else attempt)
    in
    Alcotest.(check int) "succeeds on 4th attempt" 3 v;
    Alcotest.(check int) "4 calls" 4 !calls;
    List.rev !delays
  in
  let d1 = schedule 7 in
  let d2 = schedule 7 in
  Alcotest.(check (list (float 0.))) "same seed, same schedule" d1 d2;
  Alcotest.(check int) "3 sleeps" 3 (List.length d1);
  List.iteri
    (fun k d ->
      let cap = min 2.0 (0.05 *. (2.0 ** float_of_int k)) in
      Alcotest.(check bool)
        (Printf.sprintf "delay %d in [cap/2, cap)" k)
        true
        (d >= (0.5 *. cap) -. 1e-12 && d < cap))
    d1;
  let d3 = schedule 8 in
  Alcotest.(check bool) "different seed, different jitter" true (d1 <> d3)

let test_retry_policies () =
  (* Non-retryable exceptions propagate immediately. *)
  let calls = ref 0 in
  (match
     Retry.with_backoff ~attempts:5
       ~sleep:(fun _ -> ())
       ~retry_on:(function Failure _ -> false | _ -> true)
       ~seed:1
       (fun _ ->
         incr calls;
         failwith "fatal")
   with
  | _ -> Alcotest.fail "expected Failure"
  | exception Failure _ -> ());
  Alcotest.(check int) "no retry on fatal" 1 !calls;
  (* Exhausted attempts re-raise the last failure. *)
  let calls = ref 0 in
  (match
     Retry.with_backoff ~attempts:3
       ~sleep:(fun _ -> ())
       ~seed:1
       (fun _ ->
         incr calls;
         raise Not_found)
   with
  | _ -> Alcotest.fail "expected Not_found"
  | exception Not_found -> ());
  Alcotest.(check int) "all attempts used" 3 !calls;
  match Retry.with_backoff ~attempts:0 ~seed:1 (fun _ -> ()) with
  | _ -> Alcotest.fail "attempts < 1 should be rejected"
  | exception Invalid_argument _ -> ()

(* {2 Journal} *)

let test_journal_roundtrip () =
  let path = Filename.temp_file "vp_journal" ".tsv" in
  let j = Journal.open_ path in
  Journal.record j ~key:"fig3" ~payload:"plain";
  Journal.record j ~key:"table1" ~payload:"with\ttab\nand newline \\ slash";
  Journal.record j ~key:"fig3" ~payload:"updated";
  Journal.close j;
  Alcotest.(check (list (pair string string)))
    "records in file order"
    [
      ("fig3", "plain");
      ("table1", "with\ttab\nand newline \\ slash");
      ("fig3", "updated");
    ]
    (Journal.load path);
  (* A crash mid-write leaves a torn line; load must skip it and keep the
     rest. *)
  let oc = open_out_gen [ Open_append ] 0o644 path in
  output_string oc "torn-line-without-tab\nbad\tunclosed \\\n";
  close_out oc;
  let j = Journal.open_ path in
  Journal.record j ~key:"after" ~payload:"survives";
  Journal.close j;
  let records = Journal.load path in
  Alcotest.(check int) "torn lines skipped" 4 (List.length records);
  Alcotest.(check (pair string string))
    "record after torn line survives" ("after", "survives")
    (List.nth records 3);
  Sys.remove path;
  Alcotest.(check (list (pair string string))) "missing file loads empty" []
    (Journal.load path)

let test_journal_recover () =
  (* The WAL reader's torn-tail rule, against hand-damaged files: records
     are trusted only up to the first invalid one and the file is
     physically truncated there — unlike the lenient [load], which skips
     damage and keeps reading. *)
  let path = Filename.temp_file "vp_wal" ".tsv" in
  let j = Journal.open_ path in
  Journal.record j ~key:"1" ~payload:"alpha";
  Journal.record j ~key:"2" ~payload:"beta";
  Journal.record j ~key:"3" ~payload:"gamma";
  Journal.close j;
  let clean = [ ("1", "alpha"); ("2", "beta"); ("3", "gamma") ] in
  let clean_size = (Unix.stat path).Unix.st_size in
  let records, truncated = Journal.recover path in
  Alcotest.(check (list (pair string string))) "clean file intact" clean records;
  Alcotest.(check int) "clean file cuts nothing" 0 truncated;
  (* A crash mid-append leaves half a record with no newline. *)
  let oc = open_out_gen [ Open_append ] 0o644 path in
  output_string oc "4\tdel";
  close_out oc;
  let records, truncated = Journal.recover path in
  Alcotest.(check (list (pair string string))) "torn tail dropped" clean records;
  Alcotest.(check int) "torn bytes counted" 5 truncated;
  Alcotest.(check int)
    "file truncated back to the valid prefix" clean_size
    (Unix.stat path).Unix.st_size;
  (* A flipped bit mid-file: the CRC catches it, and everything from the
     damaged record on is untrusted — a later append must never bury
     garbage mid-file. *)
  let j = Journal.open_ path in
  Journal.record j ~key:"4" ~payload:"delta";
  Journal.record j ~key:"5" ~payload:"epsilon";
  Journal.close j;
  let bytes =
    let ic = open_in_bin path in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    Bytes.of_string s
  in
  let target = Bytes.index_from bytes clean_size 'd' in
  Bytes.set bytes target 'D';
  let oc = open_out_bin path in
  output_bytes oc bytes;
  close_out oc;
  Alcotest.(check (list (pair string string)))
    "lenient load skips the bad record but keeps the rest"
    (clean @ [ ("5", "epsilon") ])
    (Journal.load path);
  let records, truncated = Journal.recover path in
  Alcotest.(check (list (pair string string)))
    "recover trusts only the prefix before the damage" clean records;
  Alcotest.(check bool) "corrupt suffix measured" true (truncated > 0);
  Alcotest.(check int)
    "corrupt suffix cut from the file" clean_size
    (Unix.stat path).Unix.st_size;
  (* The recovered journal is append-ready. *)
  let j = Journal.open_ path in
  Journal.record j ~key:"4" ~payload:"delta again";
  Journal.close j;
  let records, truncated = Journal.recover path in
  Alcotest.(check int) "no damage after re-append" 0 truncated;
  Alcotest.(check (pair string string))
    "appended record survives recovery" ("4", "delta again")
    (List.nth records 3);
  Sys.remove path;
  Alcotest.(check (pair (list (pair string string)) int))
    "missing file recovers empty" ([], 0) (Journal.recover path)

(* {2 Fault plans} *)

let test_fault_decide () =
  (match Fault.create ~exn_rate:1.5 ~seed:1 () with
  | _ -> Alcotest.fail "rate > 1 should be rejected"
  | exception Invalid_argument _ -> ());
  (match Fault.create ~exn_rate:0.6 ~delay_rate:0.6 ~seed:1 () with
  | _ -> Alcotest.fail "rates summing past 1 should be rejected"
  | exception Invalid_argument _ -> ());
  Alcotest.(check bool) "disabled is disabled" false (Fault.enabled Fault.disabled);
  for i = 0 to 99 do
    Alcotest.(check bool) "disabled injects nothing" true
      (Fault.decide Fault.disabled ~site:"cost" ~index:i = Fault.Pass)
  done;
  let f = Fault.create ~exn_rate:0.2 ~delay_rate:0.1 ~seed:99 () in
  Alcotest.(check bool) "enabled" true (Fault.enabled f);
  (* Decisions are pure: same (seed, site, index), same action —
     regardless of call order or repetition. *)
  let snapshot () =
    List.init 200 (fun i -> Fault.decide f ~site:"pool:x" ~index:i)
  in
  Alcotest.(check bool) "decide is pure" true (snapshot () = snapshot ());
  let again = Fault.create ~exn_rate:0.2 ~delay_rate:0.1 ~seed:99 () in
  Alcotest.(check bool) "plans with equal seeds agree" true
    (snapshot ()
    = List.init 200 (fun i -> Fault.decide again ~site:"pool:x" ~index:i));
  (* Rates are approximately honoured over many indices. *)
  let n = 10_000 in
  let raised = ref 0 in
  for i = 0 to n - 1 do
    match Fault.decide f ~site:"cost" ~index:i with
    | Fault.Raise_exn -> incr raised
    | _ -> ()
  done;
  let rate = float_of_int !raised /. float_of_int n in
  Alcotest.(check bool)
    (Printf.sprintf "observed exn rate %.3f near 0.2" rate)
    true
    (rate > 0.15 && rate < 0.25);
  (* Different sites draw independently. *)
  let other = List.init 200 (fun i -> Fault.decide f ~site:"pool:y" ~index:i) in
  Alcotest.(check bool) "sites are independent streams" true
    (snapshot () <> other)

let test_fault_from_env () =
  (* CI's fault-injection matrix job sets VP_FAULT_SEED; the plan must
     come up enabled there and disabled everywhere else, and either way
     behave deterministically. *)
  let f = Fault.from_env () in
  match Sys.getenv_opt "VP_FAULT_SEED" with
  | None | Some "" ->
      Alcotest.(check bool) "disabled without VP_FAULT_SEED" false
        (Fault.enabled f)
  | Some _ ->
      Alcotest.(check bool) "enabled with VP_FAULT_SEED" true (Fault.enabled f);
      let g = Fault.from_env () in
      List.iter
        (fun i ->
          Alcotest.(check bool) "env plan is reproducible" true
            (Fault.decide f ~site:"cost" ~index:i
            = Fault.decide g ~site:"cost" ~index:i))
        (List.init 500 Fun.id)

(* {2 Pool under fault injection} *)

let test_pool_faults () =
  let n = 50 in
  let tasks = List.init n (fun i -> (Printf.sprintf "t%d" i, fun () -> i * i)) in
  let clean =
    Vp_parallel.Pool.with_pool ~jobs:4 (fun pool ->
        Vp_parallel.Pool.run_results pool tasks)
  in
  Alcotest.(check bool) "clean run all Ok" true
    (List.for_all (function Ok _ -> true | Error _ -> false) clean);
  let fault = Fault.create ~exn_rate:0.3 ~seed:1337 () in
  let faulty =
    Fault.with_current fault (fun () ->
        Vp_parallel.Pool.with_pool ~jobs:4 (fun pool ->
            Vp_parallel.Pool.run_results pool tasks))
  in
  (* Totality: one result per task, no matter how many were killed. *)
  Alcotest.(check int) "one result per task" n (List.length faulty);
  let errors = ref 0 in
  List.iteri
    (fun i -> function
      | Ok v -> Alcotest.(check int) "surviving value intact" (i * i) v
      | Error { Vp_parallel.Pool.label; exn; _ } ->
          incr errors;
          Alcotest.(check string) "error label" (Printf.sprintf "t%d" i) label;
          (match exn with
          | Fault.Injected _ -> ()
          | e -> Alcotest.failf "expected Injected, got %s" (Printexc.to_string e)))
    faulty;
  Alcotest.(check bool)
    (Printf.sprintf "at least 20%% injected (%d/%d)" !errors n)
    true
    (!errors * 5 >= n);
  (* Determinism: injection depends on (seed, label, position), not on
     scheduling — a sequential run fails the exact same tasks. *)
  let sequential =
    Fault.with_current fault (fun () ->
        Vp_parallel.Pool.with_pool ~jobs:1 (fun pool ->
            Vp_parallel.Pool.run_results pool tasks))
  in
  List.iter2
    (fun a b ->
      Alcotest.(check bool) "same tasks fail at any job count" true
        ((match a with Ok _ -> true | Error _ -> false)
        = (match b with Ok _ -> true | Error _ -> false)))
    faulty sequential

(* {2 Searches under fault injection} *)

let test_cost_oracle_faults () =
  let w = workload () in
  let oracle = Vp_cost.Io_model.oracle disk w in
  let hc = Vp_algorithms.Hillclimb.algorithm in
  (* A plan that exhausts the ambient budget on (almost) every cost call:
     the search must degrade to a valid Timed_out layout, not crash. *)
  let exhaust = Fault.create ~exhaust_rate:0.9 ~seed:5 () in
  let r =
    Budget.with_current (Budget.create ()) (fun () ->
        Fault.with_current exhaust (fun () -> Partitioner.exec hc (Partitioner.Request.make ~cost:oracle w)))
  in
  (match r.Partitioner.Response.status with
  | Partitioner.Timed_out _ -> ()
  | Partitioner.Complete -> Alcotest.fail "expected Timed_out under exhaustion");
  Alcotest.(check bool) "degraded layout still valid" true
    (Testutil.valid_partitioning_of_workload r.Partitioner.Response.partitioning w);
  (* Without an ambient budget, Exhaust_budget has nothing to exhaust and
     the run completes untouched. *)
  let r2 = Fault.with_current exhaust (fun () -> Partitioner.exec hc (Partitioner.Request.make ~cost:oracle w)) in
  (match r2.Partitioner.Response.status with
  | Partitioner.Complete -> ()
  | Partitioner.Timed_out _ ->
      Alcotest.fail "unlimited ambient budget cannot be exhausted");
  (* An exception-injecting plan surfaces Injected to the caller. *)
  let explode = Fault.create ~exn_rate:1.0 ~seed:5 () in
  match Fault.with_current explode (fun () -> Partitioner.exec hc (Partitioner.Request.make ~cost:oracle w)) with
  | _ -> Alcotest.fail "expected Injected"
  | exception Fault.Injected _ -> ()

let test_brute_force_deadline () =
  (* The acceptance scenario: BruteForce on a 16-attribute table — a
     10-billion-candidate space — under a 1s wall-clock budget returns a
     valid, Timed_out layout no worse than Row. Every attribute gets a
     distinct query signature (query [b] touches the attributes whose
     index has bit [b] set), so primary partitions cannot collapse the
     atoms and the enumeration really faces B(16) candidates. *)
  let n = 16 in
  let w =
    let attributes =
      List.init n (fun j ->
          Attribute.make
            (Printf.sprintf "c%d" j)
            (match j mod 3 with
            | 0 -> Attribute.Int32
            | 1 -> Attribute.Decimal
            | _ -> Attribute.Char (5 + j)))
    in
    let table = Table.make ~name:"wide" ~attributes ~row_count:1_000_000 in
    let mask_of_bit b =
      List.fold_left
        (fun m i -> if i land (1 lsl b) <> 0 then m lor (1 lsl i) else m)
        0
        (List.init n Fun.id)
    in
    let queries =
      List.init 4 (fun b ->
          Query.make
            ~name:(Printf.sprintf "q%d" b)
            ~weight:(1.0 +. float_of_int b)
            ~references:(Attr_set.of_mask (mask_of_bit b))
            ())
    in
    Workload.make table queries
  in
  let oracle = Vp_cost.Io_model.oracle disk w in
  let bf = Vp_experiments.Common.brute_force disk in
  let budget = Budget.create ~deadline_seconds:1.0 () in
  let r = Partitioner.exec bf (Partitioner.Request.make ~budget ~cost:oracle w) in
  (match r.Partitioner.Response.status with
  | Partitioner.Timed_out _ -> ()
  | Partitioner.Complete ->
      Alcotest.fail "16-attribute brute force cannot finish in 1s");
  Alcotest.(check bool) "valid layout" true
    (Testutil.valid_partitioning_of_workload r.Partitioner.Response.partitioning w);
  let row_cost =
    oracle (Partitioning.row (Table.attribute_count (Workload.table w)))
  in
  Alcotest.(check bool)
    (Printf.sprintf "cost %.0f <= row %.0f" r.Partitioner.Response.cost row_cost)
    true
    (r.Partitioner.Response.cost <= row_cost)

(* {2 Sweep: checkpoint, resume, degradation} *)

let synthetic_experiment ?(fail = false) counter id =
  {
    Vp_experiments.Registry.id;
    paper_ref = "synthetic";
    description = "test cell " ^ id;
    run =
      (fun () ->
        incr counter;
        if fail then failwith ("cell " ^ id ^ " exploded");
        Printf.sprintf "report body for %s (run %d)" id 1);
  }

let test_sweep_resume () =
  let path = Filename.temp_file "vp_sweep" ".journal" in
  Sys.remove path;
  let c1 = ref 0 and c2 = ref 0 and c3 = ref 0 in
  let experiments =
    [
      synthetic_experiment c1 "synth1";
      synthetic_experiment ~fail:true c2 "synth2";
      synthetic_experiment c3 "synth3";
    ]
  in
  let first = Vp_experiments.Sweep.run ~jobs:2 ~journal_path:path experiments in
  Alcotest.(check int) "3 cells" 3 (List.length first);
  let statuses =
    List.map (fun c -> c.Vp_experiments.Sweep.status) first
  in
  (match statuses with
  | [ Done; Error _; Done ] -> ()
  | _ -> Alcotest.fail "expected [Done; Error; Done]");
  Alcotest.(check (list int)) "each cell ran once" [ 1; 1; 1 ] [ !c1; !c2; !c3 ];
  Alcotest.(check int) "one error cell" 1
    (List.length (Vp_experiments.Sweep.errors first));
  let report1 = Vp_experiments.Sweep.report first in
  (* Resume: completed cells replay from the journal without recomputation;
     the errored cell is retried (and fails again). *)
  let second = Vp_experiments.Sweep.run ~jobs:2 ~journal_path:path experiments in
  Alcotest.(check (list int))
    "resume recomputes only the failed cell" [ 1; 2; 1 ] [ !c1; !c2; !c3 ];
  List.iteri
    (fun i c ->
      Alcotest.(check bool)
        (Printf.sprintf "cell %d resumed flag" i)
        (i <> 1) c.Vp_experiments.Sweep.resumed)
    second;
  Alcotest.(check string) "resumed report byte-identical" report1
    (Vp_experiments.Sweep.report second);
  Sys.remove path

let test_sweep_degradation () =
  (* A sweep over real experiment cells under a tiny step budget: every
     cell must come back (Done or Timeout, never lost), and the report
     must flag degraded cells. *)
  let experiments =
    List.filter
      (fun e ->
        List.mem e.Vp_experiments.Registry.id [ "table1"; "fig3" ])
      Vp_experiments.Registry.all
  in
  Alcotest.(check int) "catalogue has both cells" 2 (List.length experiments);
  (* These cells memoize their TPC-H runs (Common.tpch_runs); drop any
     results an earlier suite computed so the budget really bites, and
     drop the degraded ones afterwards so they cannot leak out. *)
  Vp_experiments.Common.reset_caches ();
  let cells =
    Fun.protect ~finally:Vp_experiments.Common.reset_caches (fun () ->
        Vp_experiments.Sweep.run ~jobs:1 ~budget_steps:3 experiments)
  in
  List.iter
    (fun c ->
      match c.Vp_experiments.Sweep.status with
      | Vp_experiments.Sweep.Error m -> Alcotest.failf "cell errored: %s" m
      | Done | Timeout -> ())
    cells;
  let timeouts =
    List.filter
      (fun c -> c.Vp_experiments.Sweep.status = Vp_experiments.Sweep.Timeout)
      cells
  in
  Alcotest.(check bool) "a 3-step budget times out" true (timeouts <> []);
  let report = Vp_experiments.Sweep.report cells in
  let contains needle hay =
    let h = String.length hay and n = String.length needle in
    let rec go k = k + n <= h && (String.sub hay k n = needle || go (k + 1)) in
    go 0
  in
  Alcotest.(check bool) "report flags timeouts" true
    (contains "[TIMEOUT]" report);
  (* Degraded cells still carry their (partial) report body. *)
  List.iter
    (fun c ->
      Alcotest.(check bool)
        (c.Vp_experiments.Sweep.id ^ " has output")
        true
        (String.length c.Vp_experiments.Sweep.output > 0))
    timeouts

let suite =
  [
    Alcotest.test_case "budget semantics" `Quick test_budget_semantics;
    Alcotest.test_case "budget ambient install" `Quick test_budget_ambient;
    Alcotest.test_case "retry determinism" `Quick test_retry_determinism;
    Alcotest.test_case "retry policies" `Quick test_retry_policies;
    Alcotest.test_case "journal roundtrip" `Quick test_journal_roundtrip;
    Alcotest.test_case "journal recover truncation" `Quick
      test_journal_recover;
    Alcotest.test_case "fault decisions" `Quick test_fault_decide;
    Alcotest.test_case "fault plan from env" `Quick test_fault_from_env;
    Alcotest.test_case "pool under faults" `Quick test_pool_faults;
    Alcotest.test_case "cost oracle faults" `Quick test_cost_oracle_faults;
    Alcotest.test_case "brute force under deadline" `Quick
      test_brute_force_deadline;
    Alcotest.test_case "sweep journal resume" `Quick test_sweep_resume;
    Alcotest.test_case "sweep degradation" `Quick test_sweep_degradation;
  ]
